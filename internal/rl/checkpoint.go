package rl

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"advnet/internal/fsx"
	"advnet/internal/mathx"
	"advnet/internal/nn"
)

// This file implements full trainer checkpoints: everything a PPO/A2C run
// needs to resume bit-for-bit after a crash — policy and value parameters,
// Adam moments and step counters, the trainer RNG (including the Box-Muller
// spare), the iteration counter, the collector's pending-episode state, and
// (for parallel runs) every worker's private RNG stream and episode state.
//
// Determinism-on-resume contract: a run that is checkpointed at iteration k,
// reloaded into a fresh process, and continued produces the same IterStats
// stream and bitwise-identical final parameters as the uninterrupted run,
// provided the environments either implement EnvCheckpointer (mid-episode
// state round-trips) or are stateless between resets. Checkpoints are taken
// only at iteration boundaries, where the rollout buffer is empty.
//
// On-disk format: a JSON envelope {version, kind, sha256, payload} written
// atomically via fsx.WriteFileAtomic. The sha256 field is the hex digest of
// the payload bytes; loading verifies it, so a corrupt or truncated
// checkpoint yields an error instead of silently-wrong trainer state.
// CheckpointDir layers keep-last-K retention and a manifest on top, and
// LoadLatest falls back to the previous checkpoint when the newest one is
// damaged.

// CheckpointVersion identifies the on-disk trainer checkpoint format.
const CheckpointVersion = 1

// EnvCheckpointer is implemented by environments whose mid-episode state can
// round-trip through a checkpoint. Trainers save the state of envs that
// implement it and restore it on load, which is what extends the bitwise
// determinism-on-resume guarantee across a pending (unfinished) episode.
// Environments that do not implement it can still be used with checkpointed
// training, but the pending episode is abandoned on resume: the first
// post-resume rollout resets the environment, so the resumed run is valid
// but not bit-identical to the uninterrupted one.
type EnvCheckpointer interface {
	// EnvState serializes the environment's current state.
	EnvState() ([]byte, error)
	// SetEnvState restores a state captured by EnvState.
	SetEnvState([]byte) error
}

// checkpointEnvelope is the outer on-disk structure.
type checkpointEnvelope struct {
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// collectorState is the serializable cross-iteration episode state of one
// collector, plus the state of its environment when available.
type collectorState struct {
	PendLive bool            `json:"pend_live"`
	PendObs  []float64       `json:"pend_obs,omitempty"`
	EpReward float64         `json:"ep_reward"`
	Env      json.RawMessage `json:"env,omitempty"`
}

// workerState is one VecRunner worker's private stochastic state. Worker 0
// shares the trainer's RNG, policy, and value net, so only workers >= 1
// carry an RNG here; parameters are never stored per worker because weight
// sync makes every clone identical to the trainer at iteration boundaries.
type workerState struct {
	Col collectorState  `json:"collector"`
	RNG *mathx.RNGState `json:"rng,omitempty"`
}

// policySnapshot serializes a Policy. Bounds are pointers so that presence
// is explicit: nil means unbounded (±Inf, which JSON cannot represent), and
// a present value — including zero — is authoritative on load.
type policySnapshot struct {
	Kind      string          `json:"kind"` // "categorical" or "gaussian"
	Net       json.RawMessage `json:"net"`
	LogStd    []float64       `json:"log_std,omitempty"`
	MinLogStd *float64        `json:"min_log_std,omitempty"`
	MaxLogStd *float64        `json:"max_log_std,omitempty"`
}

// ppoSnapshot is the checkpoint payload shared by PPO (Workers nil) and
// VecRunner (one entry per worker) checkpoints; a2cSnapshot mirrors it.
type ppoSnapshot struct {
	Cfg     PPOConfig       `json:"cfg"`
	Iter    int             `json:"iter"`
	Policy  policySnapshot  `json:"policy"`
	Value   json.RawMessage `json:"value"`
	PolOpt  nn.AdamState    `json:"pol_opt"`
	ValOpt  nn.AdamState    `json:"val_opt"`
	RNG     mathx.RNGState  `json:"rng"`
	Col     collectorState  `json:"collector"`
	Workers []workerState   `json:"workers,omitempty"`
}

type a2cSnapshot struct {
	Cfg    A2CConfig       `json:"cfg"`
	Iter   int             `json:"iter"`
	Policy policySnapshot  `json:"policy"`
	Value  json.RawMessage `json:"value"`
	PolOpt nn.AdamState    `json:"pol_opt"`
	ValOpt nn.AdamState    `json:"val_opt"`
	RNG    mathx.RNGState  `json:"rng"`
	Col    collectorState  `json:"collector"`
}

// snapshotPolicy captures a policy's parameters and hyperparameters.
func snapshotPolicy(p Policy) (policySnapshot, error) {
	switch t := p.(type) {
	case *CategoricalPolicy:
		net, err := json.Marshal(t.Net())
		if err != nil {
			return policySnapshot{}, err
		}
		return policySnapshot{Kind: "categorical", Net: net}, nil
	case *GaussianPolicy:
		net, err := json.Marshal(t.Net())
		if err != nil {
			return policySnapshot{}, err
		}
		s := policySnapshot{
			Kind:   "gaussian",
			Net:    net,
			LogStd: append([]float64(nil), t.LogStd()...),
		}
		if !math.IsInf(t.MinLogStd, -1) {
			v := t.MinLogStd
			s.MinLogStd = &v
		}
		if !math.IsInf(t.MaxLogStd, 1) {
			v := t.MaxLogStd
			s.MaxLogStd = &v
		}
		return s, nil
	default:
		return policySnapshot{}, fmt.Errorf("rl: policy type %T does not support checkpointing", p)
	}
}

// restorePolicy loads a snapshot into an existing policy in place (the
// policy object is shared with collectors and callers, so its identity must
// be preserved). The snapshot's architecture must match the policy's.
func restorePolicy(p Policy, s policySnapshot) error {
	loadNet := func(dst *nn.MLP) error {
		tmp := new(nn.MLP)
		if err := json.Unmarshal(s.Net, tmp); err != nil {
			return fmt.Errorf("rl: checkpoint policy net: %w", err)
		}
		if err := dst.CopyParamsFrom(tmp); err != nil {
			return fmt.Errorf("rl: checkpoint policy net: %w", err)
		}
		return nil
	}
	switch t := p.(type) {
	case *CategoricalPolicy:
		if s.Kind != "categorical" {
			return fmt.Errorf("rl: checkpoint policy kind %q, trainer has categorical", s.Kind)
		}
		return loadNet(t.Net())
	case *GaussianPolicy:
		if s.Kind != "gaussian" {
			return fmt.Errorf("rl: checkpoint policy kind %q, trainer has gaussian", s.Kind)
		}
		if len(s.LogStd) != t.Dim() {
			return fmt.Errorf("rl: checkpoint log_std length %d, want %d", len(s.LogStd), t.Dim())
		}
		if err := loadNet(t.Net()); err != nil {
			return err
		}
		copy(t.LogStd(), s.LogStd)
		t.MinLogStd = math.Inf(-1)
		t.MaxLogStd = math.Inf(1)
		if s.MinLogStd != nil {
			t.MinLogStd = *s.MinLogStd
		}
		if s.MaxLogStd != nil {
			t.MaxLogStd = *s.MaxLogStd
		}
		return nil
	default:
		return fmt.Errorf("rl: policy type %T does not support checkpointing", p)
	}
}

// collectorStateOf captures col's episode state plus env's state when env
// implements EnvCheckpointer.
func collectorStateOf(col *collector, env Env) (collectorState, error) {
	st := col.state()
	if ec, ok := env.(EnvCheckpointer); ok {
		data, err := ec.EnvState()
		if err != nil {
			return collectorState{}, fmt.Errorf("rl: checkpoint env state: %w", err)
		}
		st.Env = data
	}
	return st, nil
}

// restoreCollectorState restores col and env from st. When st carries env
// state, env must implement EnvCheckpointer; when it does not (the env was
// not checkpointable at save time), the pending episode is abandoned so the
// next rollout starts from a fresh reset.
func restoreCollectorState(col *collector, env Env, st collectorState) error {
	if len(st.Env) > 0 {
		ec, ok := env.(EnvCheckpointer)
		if !ok {
			return fmt.Errorf("rl: checkpoint has env state but env type %T does not implement EnvCheckpointer", env)
		}
		if err := ec.SetEnvState(st.Env); err != nil {
			return fmt.Errorf("rl: restore env state: %w", err)
		}
		col.setState(st)
		// Bind the pending episode to the restored env now, not lazily at
		// the next collect: a resumed phase may run zero iterations (the
		// crash landed exactly on its final checkpoint), and the next
		// collect can then be against a different environment entirely,
		// which must abandon the episode rather than adopt the wrong env.
		col.pendEnv = env
		return nil
	}
	// No env state captured: a live pending episode cannot be resumed
	// faithfully, so drop it (documented resume semantic for
	// non-checkpointable environments).
	st.PendLive = false
	st.PendObs = nil
	col.setState(st)
	return nil
}

// validateAdamState checks an optimizer state against the parameter groups
// it will be applied to (a lazily-unstepped optimizer has no groups yet).
func validateAdamState(st nn.AdamState, params [][]float64, which string) error {
	if len(st.M) == 0 {
		return nil
	}
	if len(st.M) != len(params) {
		return fmt.Errorf("rl: checkpoint %s optimizer has %d parameter groups, trainer has %d", which, len(st.M), len(params))
	}
	for i := range params {
		if len(st.M[i]) != len(params[i]) {
			return fmt.Errorf("rl: checkpoint %s optimizer group %d has %d values, trainer has %d", which, i, len(st.M[i]), len(params[i]))
		}
	}
	return nil
}

// envelopeDigest returns the hex sha256 digest of an envelope payload.
func envelopeDigest(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// writeCheckpoint marshals payload into an integrity-checked envelope and
// writes it atomically.
func writeCheckpoint(path, kind string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	env := checkpointEnvelope{
		Version: CheckpointVersion,
		Kind:    kind,
		SHA256:  envelopeDigest(data),
		Payload: data,
	}
	out, err := json.Marshal(&env)
	if err != nil {
		return err
	}
	return fsx.WriteFileAtomic(path, out, 0o644)
}

// readCheckpoint reads an envelope, verifies version, kind, and integrity,
// and returns the payload bytes.
func readCheckpoint(path, kind string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var env checkpointEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("rl: checkpoint %s: %w", path, err)
	}
	if env.Version != CheckpointVersion {
		return nil, fmt.Errorf("rl: checkpoint %s: version %d, want %d", path, env.Version, CheckpointVersion)
	}
	if env.Kind != kind {
		return nil, fmt.Errorf("rl: checkpoint %s: kind %q, want %q", path, env.Kind, kind)
	}
	if envelopeDigest(env.Payload) != env.SHA256 {
		return nil, fmt.Errorf("rl: checkpoint %s: integrity check failed (corrupt or truncated payload)", path)
	}
	return env.Payload, nil
}

// snapshot builds the PPO checkpoint payload. env may be nil (no pending
// environment state is captured then).
func (p *PPO) snapshot(env Env) (*ppoSnapshot, error) {
	pol, err := snapshotPolicy(p.Policy)
	if err != nil {
		return nil, err
	}
	val, err := json.Marshal(p.Value)
	if err != nil {
		return nil, err
	}
	col, err := collectorStateOf(&p.col, env)
	if err != nil {
		return nil, err
	}
	return &ppoSnapshot{
		Cfg:    p.cfg,
		Iter:   p.iter,
		Policy: pol,
		Value:  val,
		PolOpt: p.polOpt.State(),
		ValOpt: p.valOpt.State(),
		RNG:    p.rng.State(),
		Col:    col,
	}, nil
}

// restore loads a payload into the trainer in place.
func (p *PPO) restore(snap *ppoSnapshot, env Env) error {
	if snap.Cfg != p.cfg {
		return fmt.Errorf("rl: checkpoint PPO config %+v differs from trainer config %+v", snap.Cfg, p.cfg)
	}
	if err := restorePolicy(p.Policy, snap.Policy); err != nil {
		return err
	}
	tmp := new(nn.MLP)
	if err := json.Unmarshal(snap.Value, tmp); err != nil {
		return fmt.Errorf("rl: checkpoint value net: %w", err)
	}
	if err := p.Value.CopyParamsFrom(tmp); err != nil {
		return fmt.Errorf("rl: checkpoint value net: %w", err)
	}
	if err := validateAdamState(snap.PolOpt, p.Policy.Params(), "policy"); err != nil {
		return err
	}
	if err := validateAdamState(snap.ValOpt, p.Value.Params(), "value"); err != nil {
		return err
	}
	if err := p.polOpt.SetState(snap.PolOpt); err != nil {
		return err
	}
	if err := p.valOpt.SetState(snap.ValOpt); err != nil {
		return err
	}
	p.rng.SetState(snap.RNG)
	p.iter = snap.Iter
	p.buf.reset()
	return restoreCollectorState(&p.col, env, snap.Col)
}

// SaveCheckpoint writes a full trainer checkpoint to path (atomically, with
// an integrity digest). env is the training environment; pass nil when no
// environment state should be captured. Call only at iteration boundaries
// (between TrainIteration calls).
func (p *PPO) SaveCheckpoint(path string, env Env) error {
	snap, err := p.snapshot(env)
	if err != nil {
		return err
	}
	return writeCheckpoint(path, "ppo", snap)
}

// LoadCheckpoint restores a checkpoint written by SaveCheckpoint into the
// trainer in place. The trainer must have been constructed with the same
// configuration and network architectures; env must be the reconstructed
// training environment (its mid-episode state is restored when the
// checkpoint carries one). A corrupt, truncated, or mismatched checkpoint
// returns an error and leaves no partial state guarantee — callers should
// fall back to an older checkpoint (see CheckpointDir.LoadLatest).
func (p *PPO) LoadCheckpoint(path string, env Env) error {
	payload, err := readCheckpoint(path, "ppo")
	if err != nil {
		return err
	}
	var snap ppoSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return fmt.Errorf("rl: checkpoint %s: %w", path, err)
	}
	if len(snap.Workers) > 0 {
		return fmt.Errorf("rl: checkpoint %s was written by a VecRunner (%d workers); load it through VecRunner.LoadCheckpoint", path, len(snap.Workers))
	}
	return p.restore(&snap, env)
}

// Iteration returns the number of completed training iterations (the next
// TrainIteration call is iteration Iteration()).
func (p *PPO) Iteration() int { return p.iter }

// SaveCheckpoint writes a full checkpoint of the runner and its underlying
// trainer: trainer state plus every worker's private RNG stream and
// pending-episode state (worker clones' parameters are not stored — weight
// sync makes them identical to the trainer's at iteration boundaries).
func (v *VecRunner) SaveCheckpoint(path string) error {
	p := v.ppo
	snap, err := p.snapshot(nil)
	if err != nil {
		return err
	}
	snap.Col = collectorState{} // superseded by Workers[0]
	for i, w := range v.workers {
		ws := workerState{}
		ws.Col, err = collectorStateOf(w.col, w.env)
		if err != nil {
			return fmt.Errorf("rl: checkpoint worker %d: %w", i, err)
		}
		if i > 0 {
			st := w.col.rng.State()
			ws.RNG = &st
		}
		snap.Workers = append(snap.Workers, ws)
	}
	return writeCheckpoint(path, "ppo-vec", snap)
}

// LoadCheckpoint restores a checkpoint written by VecRunner.SaveCheckpoint.
// The runner must have been freshly constructed with the same worker count,
// configuration, and environment factory as the one that saved it; every
// piece of stochastic state (trainer RNG, worker RNGs, env states, Adam
// moments, parameters) is then overwritten from the checkpoint, so whatever
// randomness construction consumed is irrelevant to the resumed run.
func (v *VecRunner) LoadCheckpoint(path string) error {
	p := v.ppo
	payload, err := readCheckpoint(path, "ppo-vec")
	if err != nil {
		return err
	}
	var snap ppoSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return fmt.Errorf("rl: checkpoint %s: %w", path, err)
	}
	if len(snap.Workers) != len(v.workers) {
		return fmt.Errorf("rl: checkpoint %s has %d workers, runner has %d", path, len(snap.Workers), len(v.workers))
	}
	// Restore trainer state first (worker 0's collector state rides in
	// Workers[0], not snap.Col).
	snap.Col = collectorState{}
	if err := p.restore(&snap, nil); err != nil {
		return err
	}
	for i, w := range v.workers {
		ws := snap.Workers[i]
		if i > 0 {
			if ws.RNG == nil {
				return fmt.Errorf("rl: checkpoint %s worker %d missing RNG state", path, i)
			}
			w.col.rng.SetState(*ws.RNG)
			// Sync the trainer's freshly-restored weights into the
			// worker clones, exactly as the end of a TrainIteration
			// would have.
			if err := CopyParams(w.col.policy, p.Policy); err != nil {
				return fmt.Errorf("rl: checkpoint weight sync worker %d: %w", i, err)
			}
			if err := w.col.value.CopyParamsFrom(p.Value); err != nil {
				return fmt.Errorf("rl: checkpoint weight sync worker %d: %w", i, err)
			}
			w.buf.reset()
		}
		if err := restoreCollectorState(w.col, w.env, ws.Col); err != nil {
			return fmt.Errorf("rl: checkpoint worker %d: %w", i, err)
		}
	}
	return nil
}

// snapshot/restore for A2C mirror the PPO implementations.

func (a *A2C) snapshot(env Env) (*a2cSnapshot, error) {
	pol, err := snapshotPolicy(a.Policy)
	if err != nil {
		return nil, err
	}
	val, err := json.Marshal(a.Value)
	if err != nil {
		return nil, err
	}
	col, err := collectorStateOf(&a.col, env)
	if err != nil {
		return nil, err
	}
	return &a2cSnapshot{
		Cfg:    a.cfg,
		Iter:   a.iter,
		Policy: pol,
		Value:  val,
		PolOpt: a.polOpt.State(),
		ValOpt: a.valOpt.State(),
		RNG:    a.rng.State(),
		Col:    col,
	}, nil
}

// SaveCheckpoint writes a full A2C trainer checkpoint (see PPO.SaveCheckpoint).
func (a *A2C) SaveCheckpoint(path string, env Env) error {
	snap, err := a.snapshot(env)
	if err != nil {
		return err
	}
	return writeCheckpoint(path, "a2c", snap)
}

// LoadCheckpoint restores a checkpoint written by A2C.SaveCheckpoint (see
// PPO.LoadCheckpoint for the contract).
func (a *A2C) LoadCheckpoint(path string, env Env) error {
	payload, err := readCheckpoint(path, "a2c")
	if err != nil {
		return err
	}
	var snap a2cSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return fmt.Errorf("rl: checkpoint %s: %w", path, err)
	}
	if snap.Cfg != a.cfg {
		return fmt.Errorf("rl: checkpoint A2C config %+v differs from trainer config %+v", snap.Cfg, a.cfg)
	}
	if err := restorePolicy(a.Policy, snap.Policy); err != nil {
		return err
	}
	tmp := new(nn.MLP)
	if err := json.Unmarshal(snap.Value, tmp); err != nil {
		return fmt.Errorf("rl: checkpoint value net: %w", err)
	}
	if err := a.Value.CopyParamsFrom(tmp); err != nil {
		return fmt.Errorf("rl: checkpoint value net: %w", err)
	}
	if err := validateAdamState(snap.PolOpt, a.Policy.Params(), "policy"); err != nil {
		return err
	}
	if err := validateAdamState(snap.ValOpt, a.Value.Params(), "value"); err != nil {
		return err
	}
	if err := a.polOpt.SetState(snap.PolOpt); err != nil {
		return err
	}
	if err := a.valOpt.SetState(snap.ValOpt); err != nil {
		return err
	}
	a.rng.SetState(snap.RNG)
	a.iter = snap.Iter
	a.buf.reset()
	return restoreCollectorState(&a.col, env, snap.Col)
}

// Iteration returns the number of completed training iterations.
func (a *A2C) Iteration() int { return a.iter }

// CheckpointDir manages a directory of rolling checkpoints: numbered files,
// a manifest, keep-last-K retention, and fallback loading. All writes are
// atomic, so a crash at any point leaves a loadable directory.
//
// Keep-last-K pruning assumes a single writer. Processes that share a
// directory (the distributed coordinator, a restarted worker pointed at the
// old flags) must claim it with Acquire first; Save refuses with a typed
// *DirOwnedError when a different live process holds the claim. Directories
// never claimed behave exactly as before.
type CheckpointDir struct {
	Dir  string
	Keep int // checkpoints retained; <= 0 means DefaultKeep

	owned bool // this CheckpointDir holds the directory's ownership claim
}

// DefaultKeep is the number of checkpoints retained when CheckpointDir.Keep
// is unset.
const DefaultKeep = 3

// manifestName is the manifest file within a checkpoint directory.
const manifestName = "manifest.json"

type manifestEntry struct {
	Iter int    `json:"iter"`
	File string `json:"file"`
}

type checkpointManifest struct {
	Entries []manifestEntry `json:"entries"` // ascending by Iter
}

func (d *CheckpointDir) keep() int {
	if d.Keep <= 0 {
		return DefaultKeep
	}
	return d.Keep
}

// fileFor names the checkpoint file for an iteration.
func fileFor(iter int) string { return fmt.Sprintf("ckpt-%08d.json", iter) }

// readManifest loads the manifest, falling back to scanning the directory
// when the manifest is missing or unreadable (ascending iteration order).
func (d *CheckpointDir) readManifest() checkpointManifest {
	var m checkpointManifest
	data, err := os.ReadFile(filepath.Join(d.Dir, manifestName))
	if err == nil && json.Unmarshal(data, &m) == nil && len(m.Entries) > 0 {
		return m
	}
	// Fallback: scan for ckpt-*.json.
	entries, err := os.ReadDir(d.Dir)
	if err != nil {
		return checkpointManifest{}
	}
	for _, e := range entries {
		var iter int
		if n, _ := fmt.Sscanf(e.Name(), "ckpt-%d.json", &iter); n == 1 {
			m.Entries = append(m.Entries, manifestEntry{Iter: iter, File: e.Name()})
		}
	}
	sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].Iter < m.Entries[j].Iter })
	return m
}

// Save writes the checkpoint for iteration iter through write (which
// receives the full file path), then updates the manifest and prunes
// checkpoints beyond the retention count. The manifest is updated only
// after the checkpoint file is fully written, so a crash mid-save leaves
// the previous manifest pointing at intact files.
func (d *CheckpointDir) Save(iter int, write func(path string) error) error {
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return err
	}
	if err := d.checkOwnership(); err != nil {
		return err
	}
	name := fileFor(iter)
	if err := write(filepath.Join(d.Dir, name)); err != nil {
		return err
	}
	m := d.readManifest()
	// Replace an existing entry for the same iteration, else append.
	replaced := false
	for i := range m.Entries {
		if m.Entries[i].Iter == iter {
			m.Entries[i].File = name
			replaced = true
			break
		}
	}
	if !replaced {
		m.Entries = append(m.Entries, manifestEntry{Iter: iter, File: name})
		sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].Iter < m.Entries[j].Iter })
	}
	// Prune to the newest Keep entries.
	for len(m.Entries) > d.keep() {
		victim := m.Entries[0]
		m.Entries = m.Entries[1:]
		os.Remove(filepath.Join(d.Dir, victim.File))
	}
	data, err := json.Marshal(&m)
	if err != nil {
		return err
	}
	return fsx.WriteFileAtomic(filepath.Join(d.Dir, manifestName), data, 0o644)
}

// Latest returns the newest checkpoint's path and iteration, or an error if
// the directory holds none.
func (d *CheckpointDir) Latest() (path string, iter int, err error) {
	m := d.readManifest()
	if len(m.Entries) == 0 {
		return "", 0, fmt.Errorf("rl: no checkpoints in %s", d.Dir)
	}
	last := m.Entries[len(m.Entries)-1]
	return filepath.Join(d.Dir, last.File), last.Iter, nil
}

// LoadLatest loads the newest checkpoint through load, falling back to the
// next-older one each time load fails (corrupt file, integrity mismatch,
// …). It returns the iteration of the checkpoint that loaded, or an error
// joining every failure when none could be loaded.
func (d *CheckpointDir) LoadLatest(load func(path string) error) (int, error) {
	m := d.readManifest()
	if len(m.Entries) == 0 {
		return 0, fmt.Errorf("rl: no checkpoints in %s", d.Dir)
	}
	var errs []error
	for i := len(m.Entries) - 1; i >= 0; i-- {
		e := m.Entries[i]
		if err := load(filepath.Join(d.Dir, e.File)); err != nil {
			errs = append(errs, fmt.Errorf("ckpt iter %d: %w", e.Iter, err))
			continue
		}
		return e.Iter, nil
	}
	return 0, fmt.Errorf("rl: no loadable checkpoint in %s: %w", d.Dir, errors.Join(errs...))
}
