package rl

import (
	"fmt"
	"math"
	"time"

	"advnet/internal/mathx"
	"advnet/internal/nn"
)

// PPOConfig holds the hyperparameters of the PPO trainer. The defaults mirror
// the stable-baselines PPO2 defaults the paper reports using (with a constant
// learning rate, as the paper specifies).
type PPOConfig struct {
	RolloutSteps  int     // environment steps collected per iteration
	Epochs        int     // optimization epochs over each rollout
	MinibatchSize int     // samples per gradient step
	Gamma         float64 // discount factor
	Lambda        float64 // GAE lambda
	ClipEps       float64 // PPO clipping radius
	EntropyCoef   float64 // entropy bonus weight
	ValueCoef     float64 // value-loss weight
	LR            float64 // Adam learning rate (constant)
	MaxGradNorm   float64 // global gradient-norm clip
	// GEMM routes the fused minibatch update (policy batch caches and the
	// value network's batched passes) through the blocked matrix–matrix
	// kernels of nn.NewBatchCacheGEMM. Off by default: the GEMM kernels
	// reorder floating-point summation, so they are equivalent to the
	// historical path only to rounding (~1e-12 relative), not bitwise.
	GEMM bool
}

// DefaultPPOConfig returns the stable-baselines-like defaults.
func DefaultPPOConfig() PPOConfig {
	return PPOConfig{
		RolloutSteps:  2048,
		Epochs:        4,
		MinibatchSize: 64,
		Gamma:         0.99,
		Lambda:        0.95,
		ClipEps:       0.2,
		EntropyCoef:   0.01,
		ValueCoef:     0.5,
		LR:            3e-4,
		MaxGradNorm:   0.5,
	}
}

func (c PPOConfig) validate() error {
	switch {
	case c.RolloutSteps <= 0:
		return fmt.Errorf("rl: RolloutSteps=%d", c.RolloutSteps)
	case c.Epochs <= 0:
		return fmt.Errorf("rl: Epochs=%d", c.Epochs)
	case c.MinibatchSize <= 0:
		return fmt.Errorf("rl: MinibatchSize=%d", c.MinibatchSize)
	case c.Gamma <= 0 || c.Gamma > 1:
		return fmt.Errorf("rl: Gamma=%v", c.Gamma)
	case c.Lambda < 0 || c.Lambda > 1:
		return fmt.Errorf("rl: Lambda=%v", c.Lambda)
	case c.ClipEps <= 0:
		return fmt.Errorf("rl: ClipEps=%v", c.ClipEps)
	case c.LR <= 0:
		return fmt.Errorf("rl: LR=%v", c.LR)
	}
	return nil
}

// IterStats summarizes one PPO training iteration.
type IterStats struct {
	Iteration    int
	Steps        int     // env steps in the rollout
	Episodes     int     // episodes completed during the rollout
	MeanEpReward float64 // mean total reward of completed episodes
	MeanStepRew  float64 // mean per-step reward across the rollout
	PolicyLoss   float64
	ValueLoss    float64 // optimized value objective c_V·0.5·(V−ret)², incl. ValueCoef

	Entropy       float64
	ClipFraction  float64 // fraction of samples where the ratio was clipped
	ApproxKL      float64 // mean (logp_old - logp_new), a KL proxy
	GradStepCount int
}

// PPO trains a Policy and a value network against an Env with Proximal Policy
// Optimization.
type PPO struct {
	Policy Policy
	Value  *nn.MLP

	cfg    PPOConfig
	polOpt *nn.Adam
	valOpt *nn.Adam
	rng    *mathx.RNG
	buf    rolloutBuffer
	iter   int
	col    collector // sequential-path rollout state (also vec worker 0)

	met *TrainMetrics // optional training telemetry (nil = off)

	// Minibatch gather/update scratch, sized lazily.
	uobs    []float64 // minibatch×obsDim observation rows
	uact    []float64 // minibatch×actDim action rows
	ulogp   []float64
	uent    []float64
	uwLogp  []float64
	uvdOut  []float64
	vbcache *nn.BatchCache // value-net batched cache
}

// NewPPO builds a trainer. The value network must map observations to a
// single scalar.
func NewPPO(policy Policy, value *nn.MLP, cfg PPOConfig, rng *mathx.RNG) (*PPO, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if value.OutputSize() != 1 {
		return nil, fmt.Errorf("rl: value network output size %d, want 1", value.OutputSize())
	}
	p := &PPO{
		Policy: policy,
		Value:  value,
		cfg:    cfg,
		polOpt: nn.NewAdam(cfg.LR),
		valOpt: nn.NewAdam(cfg.LR),
		rng:    rng,
	}
	if cfg.GEMM {
		if g, ok := policy.(interface{ SetBatchGEMM(bool) }); ok {
			g.SetBatchGEMM(true)
		}
	}
	p.col = newCollector(policy, value, rng, &p.buf)
	return p, nil
}

// Config returns the trainer's configuration.
func (p *PPO) Config() PPOConfig { return p.cfg }

// TrainIteration collects one rollout from env and performs the PPO update,
// returning iteration statistics.
func (p *PPO) TrainIteration(env Env) IterStats {
	stats := IterStats{Iteration: p.iter}
	p.iter++

	var t0 time.Time
	if p.met != nil {
		t0 = time.Now()
	}
	p.collectRollout(env, &stats)
	if p.met != nil {
		p.met.Rollout.Observe(time.Since(t0))
		t0 = time.Now()
	}

	// Bootstrap value for the trailing partial episode.
	p.buf.computeGAE(p.cfg.Gamma, p.cfg.Lambda, p.col.bootstrap())
	p.buf.normalizeAdvantages()
	p.update(&stats)
	if p.met != nil {
		p.met.Update.Observe(time.Since(t0))
		p.met.Iterations.Inc()
	}
	p.buf.reset()
	return stats
}

// Train runs iterations training iterations and returns their statistics.
func (p *PPO) Train(env Env, iterations int) []IterStats {
	out := make([]IterStats, 0, iterations)
	for i := 0; i < iterations; i++ {
		out = append(out, p.TrainIteration(env))
	}
	return out
}

func (p *PPO) collectRollout(env Env, stats *IterStats) {
	cs := p.col.collect(env, p.cfg.RolloutSteps)
	mergeCollectStats(stats, cs, p.buf.len())
}

// mergeCollectStats folds collection totals into the iteration statistics,
// guarding the per-step mean against zero-step rollouts (reachable when a
// parallel run splits fewer rollout steps than workers).
func mergeCollectStats(stats *IterStats, cs collectStats, bufLen int) {
	stats.Steps = bufLen
	stats.Episodes = cs.episodes
	if bufLen > 0 {
		stats.MeanStepRew = cs.rewardSum / float64(bufLen)
	}
	stats.MeanEpReward = cs.epRewardSum
	if cs.episodes > 0 {
		stats.MeanEpReward = cs.epRewardSum / float64(cs.episodes)
	}
}

// ensureUpdateScratch sizes the minibatch gather buffers and the value net's
// batched cache for m samples.
func (p *PPO) ensureUpdateScratch(m, obsDim, actDim int) {
	if len(p.ulogp) >= m && len(p.uobs) >= m*obsDim && len(p.uact) >= m*actDim {
		return
	}
	p.uobs = make([]float64, m*obsDim)
	p.uact = make([]float64, m*actDim)
	p.ulogp = make([]float64, m)
	p.uent = make([]float64, m)
	p.uwLogp = make([]float64, m)
	p.uvdOut = make([]float64, m)
	if p.vbcache == nil || p.vbcache.Capacity() < m {
		if p.cfg.GEMM {
			p.vbcache = p.Value.NewBatchCacheGEMM(m)
		} else {
			p.vbcache = p.Value.NewBatchCache(m)
		}
	}
}

func (p *PPO) update(stats *IterStats) {
	n := p.buf.len()
	if n == 0 {
		return
	}
	bp, batched := p.Policy.(BatchPolicy)
	var (
		sumPolicyLoss float64
		sumValueLoss  float64
		sumEntropy    float64
		clipped       int
		sumKL         float64
		samples       int
	)
	for epoch := 0; epoch < p.cfg.Epochs; epoch++ {
		perm := p.rng.Perm(n)
		for start := 0; start < n; start += p.cfg.MinibatchSize {
			end := start + p.cfg.MinibatchSize
			if end > n {
				end = n
			}
			batch := perm[start:end]
			p.Policy.ZeroGrad()
			p.Value.ZeroGrad()
			if batched {
				// Fused path: one shared forward pass per sample
				// (instead of LogProb + Backward each running
				// their own), batched through preallocated
				// row-major caches. With cfg.GEMM off, per-sample
				// arithmetic and gradient accumulation order are
				// unchanged, so results are bit-identical to the
				// fallback; with it on, the blocked kernels match
				// the fallback to rounding only.
				m := len(batch)
				obsDim := len(p.buf.steps[0].obs)
				actDim := len(p.buf.steps[0].action)
				p.ensureUpdateScratch(m, obsDim, actDim)
				for k, idx := range batch {
					s := &p.buf.steps[idx]
					copy(p.uobs[k*obsDim:(k+1)*obsDim], s.obs)
					copy(p.uact[k*actDim:(k+1)*actDim], s.action)
				}
				bp.BatchEval(p.uobs, p.uact, m, p.ulogp, p.uent)
				for k, idx := range batch {
					s := &p.buf.steps[idx]
					logpNew := p.ulogp[k]
					ratio := math.Exp(logpNew - s.logp)
					adv := s.advantage
					clipActive := false
					if adv >= 0 && ratio > 1+p.cfg.ClipEps {
						clipActive = true
					}
					if adv < 0 && ratio < 1-p.cfg.ClipEps {
						clipActive = true
					}
					p.uwLogp[k] = 0
					if !clipActive {
						p.uwLogp[k] = -ratio * adv
					}
					surr := ratio * adv
					clippedRatio := mathx.Clamp(ratio, 1-p.cfg.ClipEps, 1+p.cfg.ClipEps)
					if clippedRatio*adv < surr {
						surr = clippedRatio * adv
					}
					sumPolicyLoss += -surr
					sumEntropy += p.uent[k]
					sumKL += s.logp - logpNew
					if clipActive {
						clipped++
					}
					samples++
				}
				bp.BatchGrad(p.uwLogp[:m], -p.cfg.EntropyCoef)

				// Value term: c_V·0.5·(V(s) − ret)², batched. The reported
				// loss carries the same ValueCoef scaling as the gradient so
				// the stat is the quantity the optimizer actually descends.
				vs := p.Value.ForwardBatch(p.vbcache, p.uobs, m)
				for k, idx := range batch {
					diff := vs[k] - p.buf.steps[idx].ret
					p.uvdOut[k] = p.cfg.ValueCoef * diff
					sumValueLoss += p.cfg.ValueCoef * 0.5 * diff * diff
				}
				p.Value.BackwardBatch(p.vbcache, p.uvdOut[:m])
			} else {
				for _, idx := range batch {
					s := &p.buf.steps[idx]

					// Policy term. ratio = exp(logp_new - logp_old).
					logpNew := p.Policy.LogProb(s.obs, s.action)
					ratio := math.Exp(logpNew - s.logp)
					adv := s.advantage
					// L_clip = min(r·A, clip(r)·A); we accumulate the
					// gradient of −L_clip. d(r·A)/dlogp = r·A, so the
					// logp weight is −r·A when the unclipped branch is
					// active and 0 when clipped.
					clipActive := false
					if adv >= 0 && ratio > 1+p.cfg.ClipEps {
						clipActive = true
					}
					if adv < 0 && ratio < 1-p.cfg.ClipEps {
						clipActive = true
					}
					wLogp := 0.0
					if !clipActive {
						wLogp = -ratio * adv
					}
					_, ent := p.Policy.Backward(s.obs, s.action, wLogp, -p.cfg.EntropyCoef)

					surr := ratio * adv
					clippedRatio := mathx.Clamp(ratio, 1-p.cfg.ClipEps, 1+p.cfg.ClipEps)
					if clippedRatio*adv < surr {
						surr = clippedRatio * adv
					}
					sumPolicyLoss += -surr
					sumEntropy += ent
					sumKL += s.logp - logpNew
					if clipActive {
						clipped++
					}
					samples++

					// Value term: c_V·0.5·(V(s) − ret)², reported with the
					// same ValueCoef scaling the gradient uses.
					cache := p.Value.AcquireCache()
					diff := p.Value.ForwardInto(cache, s.obs)[0] - s.ret
					dv := [1]float64{p.cfg.ValueCoef * diff}
					p.Value.BackwardInto(cache, dv[:])
					p.Value.ReleaseCache(cache)
					sumValueLoss += p.cfg.ValueCoef * 0.5 * diff * diff
				}
			}
			inv := 1.0 / float64(len(batch))
			p.Policy.ScaleGrads(inv)
			p.Value.ScaleGrads(inv)
			if p.cfg.MaxGradNorm > 0 {
				p.Policy.ClipGradNorm(p.cfg.MaxGradNorm)
				p.Value.ClipGradNorm(p.cfg.MaxGradNorm)
			}
			p.polOpt.Step(p.Policy.Params(), p.Policy.Grads())
			p.valOpt.Step(p.Value.Params(), p.Value.Grads())
			stats.GradStepCount++
		}
	}
	if samples > 0 {
		stats.PolicyLoss = sumPolicyLoss / float64(samples)
		stats.ValueLoss = sumValueLoss / float64(samples)
		stats.Entropy = sumEntropy / float64(samples)
		stats.ClipFraction = float64(clipped) / float64(samples)
		stats.ApproxKL = sumKL / float64(samples)
	}
}
