package rl

import (
	"encoding/json"
	"fmt"
	"os"

	"advnet/internal/nn"
)

// This file is the bridge between training and serving: it exports the
// policy network out of any trainer checkpoint into a standalone,
// integrity-checked "policy" envelope, and loads policy nets back from every
// on-disk format the repository produces. The serving layer
// (internal/serve) hot-reloads snapshots exclusively through LoadPolicyNet,
// so a model server can point at a live CheckpointDir and pick up whatever
// the trainer last wrote.

// PolicyKind is the envelope kind of a standalone exported policy network.
const PolicyKind = "policy"

// SavePolicyNet writes net as a standalone policy envelope: the same
// {version, kind, sha256, payload} integrity-checked JSON format trainer
// checkpoints use (atomic write, corruption detected on load), with the
// network snapshot as payload.
func SavePolicyNet(path string, net *nn.MLP) error {
	payload, err := json.Marshal(net)
	if err != nil {
		return err
	}
	return writeCheckpoint(path, PolicyKind, json.RawMessage(payload))
}

// readEnvelope loads any checkpoint envelope from path, verifies its version
// and payload integrity, and returns the payload with its kind. A file that
// is not an envelope at all returns kind "".
func readEnvelope(path string) (payload []byte, kind string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var env checkpointEnvelope
	if err := json.Unmarshal(data, &env); err != nil || env.Kind == "" {
		return data, "", nil
	}
	if env.Version != CheckpointVersion {
		return nil, "", fmt.Errorf("rl: checkpoint %s: version %d, want %d", path, env.Version, CheckpointVersion)
	}
	sum, want := envelopeDigest(env.Payload), env.SHA256
	if sum != want {
		return nil, "", fmt.Errorf("rl: checkpoint %s: integrity check failed (corrupt or truncated payload)", path)
	}
	return env.Payload, env.Kind, nil
}

// LoadPolicyNet loads a policy network from any format this repository
// writes:
//
//   - a standalone "policy" envelope (SavePolicyNet),
//   - a full trainer checkpoint ("ppo", "ppo-vec", or "a2c" envelopes from
//     the SaveCheckpoint family) — the policy net is extracted, optimizer
//     and collector state ignored,
//   - a bare nn.MLP JSON file (the legacy robustify/advtrain -o output).
//
// Envelope formats are sha256-verified before any decoding; the bare-MLP
// fallback has no digest and is validated structurally only.
func LoadPolicyNet(path string) (*nn.MLP, error) {
	payload, kind, err := readEnvelope(path)
	if err != nil {
		return nil, err
	}
	var netJSON json.RawMessage
	switch kind {
	case "", PolicyKind:
		netJSON = payload
	case "ppo", "ppo-vec":
		var snap ppoSnapshot
		if err := json.Unmarshal(payload, &snap); err != nil {
			return nil, fmt.Errorf("rl: checkpoint %s: %w", path, err)
		}
		netJSON = snap.Policy.Net
	case "a2c":
		var snap a2cSnapshot
		if err := json.Unmarshal(payload, &snap); err != nil {
			return nil, fmt.Errorf("rl: checkpoint %s: %w", path, err)
		}
		netJSON = snap.Policy.Net
	default:
		return nil, fmt.Errorf("rl: checkpoint %s: kind %q holds no policy network", path, kind)
	}
	if len(netJSON) == 0 {
		return nil, fmt.Errorf("rl: checkpoint %s: empty policy network", path)
	}
	net := new(nn.MLP)
	if err := json.Unmarshal(netJSON, net); err != nil {
		return nil, fmt.Errorf("rl: checkpoint %s: policy net: %w", path, err)
	}
	return net, nil
}

// ExportPolicyNet extracts the policy network from a trainer checkpoint (or
// any other loadable policy format) at src and re-writes it as a standalone
// policy envelope at dst — the handoff from a training run to a serving
// fleet.
func ExportPolicyNet(src, dst string) (*nn.MLP, error) {
	net, err := LoadPolicyNet(src)
	if err != nil {
		return nil, err
	}
	if err := SavePolicyNet(dst, net); err != nil {
		return nil, err
	}
	return net, nil
}
