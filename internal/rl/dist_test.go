package rl

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"advnet/internal/mathx"
	"advnet/internal/nn"
)

// newSimLane builds a worker-side lane for the checkpoint fixture's
// architecture. The construction RNG is arbitrary — parameters are
// overwritten by SetParams before every collect — but the hyperparameters
// (MaxLogStd) must match the trainer's, as a dist Domain's BuildModel must.
func newSimLane(t *testing.T, gamma, lambda float64) *Lane {
	t.Helper()
	rng := mathx.NewRNG(777)
	policy := NewGaussianPolicy(nn.NewMLP(rng, []int{1, 8, 1}, nn.Tanh), -0.5)
	policy.MaxLogStd = 0
	value := nn.NewMLP(rng, []int{1, 8, 1}, nn.Tanh)
	l, err := NewLane(policy, value, newCkptEnv(), gamma, lambda)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// runDistSim drives the trainer through iters distributed iterations
// against worker-side lanes, exactly as the dist coordinator does over the
// wire: ship state + params out, collect batches, merge in lane order.
// Returns the per-iteration stats; states is mutated to the final boundary.
func runDistSim(t *testing.T, p *PPO, lanes []*Lane, states []LaneState, steps []int, iters int) []IterStats {
	t.Helper()
	out := make([]IterStats, 0, iters)
	for it := 0; it < iters; it++ {
		states[0].RNG = p.RNGState() // lane 0 shares the trainer RNG
		batches := make([]*RolloutBatch, len(lanes))
		for i, l := range lanes {
			if err := l.SetParams(p.Policy.Params(), p.Value.Params()); err != nil {
				t.Fatal(err)
			}
			if err := l.Restore(states[i]); err != nil {
				t.Fatal(err)
			}
			b, err := l.Collect(i, steps[i])
			if err != nil {
				t.Fatal(err)
			}
			batches[i] = b
		}
		st, err := p.ApplyRemoteRollouts(batches)
		if err != nil {
			t.Fatal(err)
		}
		for i := range states {
			states[i] = batches[i].End
		}
		out = append(out, st)
	}
	return out
}

// TestDistLanesMatchVecRunnerBitwise is the lane-level half of the
// distributed determinism contract: W stateless lanes driven through
// SetParams/Restore/Collect/ApplyRemoteRollouts — the exact sequence the
// coordinator runs over the wire — produce bitwise-identical stats and
// parameters to an in-process VecRunner with W workers, for W ∈ {1, 4}.
func TestDistLanesMatchVecRunnerBitwise(t *testing.T) {
	for _, W := range []int{1, 4} {
		t.Run(map[int]string{1: "W=1", 4: "W=4"}[W], func(t *testing.T) {
			const iters = 4

			vec, vecPol, vecVal := newCkptFixture(t, 50, 50)
			vecStats, err := vec.TrainParallel(func(int) Env { return newCkptEnv() }, W, iters)
			if err != nil {
				t.Fatal(err)
			}
			vecFP := fingerprint(append(vecPol.Params(), vecVal.Params()...), vecStats)

			p, pol, val := newCkptFixture(t, 50, 50)
			states, err := p.NewLaneStates(func(int) Env { return newCkptEnv() }, W)
			if err != nil {
				t.Fatal(err)
			}
			steps, err := p.LaneSteps(W)
			if err != nil {
				t.Fatal(err)
			}
			lanes := make([]*Lane, W)
			for i := range lanes {
				lanes[i] = newSimLane(t, p.Config().Gamma, p.Config().Lambda)
			}
			distStats := runDistSim(t, p, lanes, states, steps, iters)

			for i := range vecStats {
				if vecStats[i] != distStats[i] {
					t.Fatalf("iter %d stats diverge:\nvec  %+v\ndist %+v", i, vecStats[i], distStats[i])
				}
			}
			distFP := fingerprint(append(pol.Params(), val.Params()...), distStats)
			if vecFP != distFP {
				t.Fatalf("dist fingerprint %#x, vec %#x", distFP, vecFP)
			}
		})
	}
}

// TestDistCheckpointBytesMatchVecRunner: a distributed checkpoint saved at
// an iteration boundary is byte-identical to the "ppo-vec" checkpoint an
// in-process VecRunner writes at the same boundary — the two training paths
// are interchangeable mid-run, which is what lets a distributed coordinator
// resume a VecRunner run and vice versa.
func TestDistCheckpointBytesMatchVecRunner(t *testing.T) {
	const W, iters = 4, 3
	dir := t.TempDir()

	vec, _, _ := newCkptFixture(t, 50, 50)
	runner, err := NewVecRunner(vec, func(int) Env { return newCkptEnv() }, W)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Train(iters); err != nil {
		t.Fatal(err)
	}
	vecPath := filepath.Join(dir, "vec.json")
	if err := runner.SaveCheckpoint(vecPath); err != nil {
		t.Fatal(err)
	}

	p, _, _ := newCkptFixture(t, 50, 50)
	states, err := p.NewLaneStates(func(int) Env { return newCkptEnv() }, W)
	if err != nil {
		t.Fatal(err)
	}
	steps, _ := p.LaneSteps(W)
	lanes := make([]*Lane, W)
	for i := range lanes {
		lanes[i] = newSimLane(t, p.Config().Gamma, p.Config().Lambda)
	}
	runDistSim(t, p, lanes, states, steps, iters)
	distPath := filepath.Join(dir, "dist.json")
	if err := p.SaveDistCheckpoint(distPath, states); err != nil {
		t.Fatal(err)
	}

	vecBytes, err := os.ReadFile(vecPath)
	if err != nil {
		t.Fatal(err)
	}
	distBytes, err := os.ReadFile(distPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vecBytes, distBytes) {
		t.Fatalf("checkpoint bytes differ:\nvec  %d bytes\ndist %d bytes", len(vecBytes), len(distBytes))
	}
}

// TestDistCheckpointResumeBitwise: kill-and-resume through the dist
// checkpoint API. A run saved at iteration 3 and resumed into a trainer
// built with a DIFFERENT seed (the checkpoint must be authoritative)
// continues bitwise-identically to the uninterrupted 6-iteration run.
func TestDistCheckpointResumeBitwise(t *testing.T) {
	const W, head, total = 4, 3, 6
	newLanes := func(p *PPO) []*Lane {
		lanes := make([]*Lane, W)
		for i := range lanes {
			lanes[i] = newSimLane(t, p.Config().Gamma, p.Config().Lambda)
		}
		return lanes
	}

	full, fullPol, fullVal := newCkptFixture(t, 50, 50)
	fullStates, err := full.NewLaneStates(func(int) Env { return newCkptEnv() }, W)
	if err != nil {
		t.Fatal(err)
	}
	steps, _ := full.LaneSteps(W)
	fullStats := runDistSim(t, full, newLanes(full), fullStates, steps, total)
	fullFP := fingerprint(append(fullPol.Params(), fullVal.Params()...), fullStats)

	a, _, _ := newCkptFixture(t, 50, 50)
	aStates, err := a.NewLaneStates(func(int) Env { return newCkptEnv() }, W)
	if err != nil {
		t.Fatal(err)
	}
	headStats := runDistSim(t, a, newLanes(a), aStates, steps, head)
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := a.SaveDistCheckpoint(path, aStates); err != nil {
		t.Fatal(err)
	}

	b, bPol, bVal := newCkptFixture(t, 999, 50) // different seed
	bStates, err := b.LoadDistCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(bStates) != W {
		t.Fatalf("restored %d lanes, want %d", len(bStates), W)
	}
	if b.Iteration() != head {
		t.Fatalf("Iteration() = %d after load, want %d", b.Iteration(), head)
	}
	tailStats := runDistSim(t, b, newLanes(b), bStates, steps, total-head)

	combined := append(append([]IterStats(nil), headStats...), tailStats...)
	for i := range fullStats {
		if fullStats[i] != combined[i] {
			t.Fatalf("iter %d stats diverge after resume:\nfull    %+v\nresumed %+v", i, fullStats[i], combined[i])
		}
	}
	resFP := fingerprint(append(bPol.Params(), bVal.Params()...), combined)
	if fullFP != resFP {
		t.Fatalf("resumed fingerprint %#x, uninterrupted %#x", resFP, fullFP)
	}
}
