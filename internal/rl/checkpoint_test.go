package rl

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"advnet/internal/faults"
	"advnet/internal/mathx"
	"advnet/internal/nn"
)

// ckptTargetEnv is targetEnv with mid-episode checkpoint support: episodes
// span multiple steps, so resuming a pending episode bitwise requires the
// env's step counter to round-trip.
type ckptTargetEnv struct {
	targetEnv
}

type ckptTargetEnvState struct {
	Step int `json:"step"`
}

func (e *ckptTargetEnv) EnvState() ([]byte, error) {
	return json.Marshal(ckptTargetEnvState{Step: e.step})
}

func (e *ckptTargetEnv) SetEnvState(data []byte) error {
	var st ckptTargetEnvState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	e.step = st.Step
	return nil
}

func newCkptEnv() *ckptTargetEnv {
	return &ckptTargetEnv{targetEnv{target: 1.5, horizon: 8}}
}

// newCkptFixture builds a Gaussian-policy PPO trainer. The seed matters only
// for the run that generates the checkpoint; a trainer restored from a
// checkpoint has all of its stochastic state overwritten, which the resume
// tests prove by constructing the resumed trainer with a different seed.
// MaxLogStd is set to 0 — an explicitly-present zero bound — so every
// save/load round-trips the bound-presence encoding.
func newCkptFixture(t *testing.T, seed uint64, steps int) (*PPO, *GaussianPolicy, *nn.MLP) {
	t.Helper()
	rng := mathx.NewRNG(seed)
	policy := NewGaussianPolicy(nn.NewMLP(rng, []int{1, 8, 1}, nn.Tanh), -0.5)
	policy.MaxLogStd = 0
	value := nn.NewMLP(rng, []int{1, 8, 1}, nn.Tanh)
	cfg := DefaultPPOConfig()
	cfg.RolloutSteps = steps
	cfg.LR = 0.005
	p, err := NewPPO(policy, value, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return p, policy, value
}

// TestPPOResumeBitwise: save at iteration 3, load into a trainer built with
// a DIFFERENT seed, continue — stats and final parameters must be bitwise
// identical to the uninterrupted 6-iteration run. RolloutSteps=50 with
// horizon-8 episodes guarantees a live mid-episode pending state at the
// checkpoint, exercising the EnvCheckpointer path.
func TestPPOResumeBitwise(t *testing.T) {
	full, fullPol, fullVal := newCkptFixture(t, 50, 50)
	fullStats := full.Train(newCkptEnv(), 6)
	fullFP := fingerprint(append(fullPol.Params(), fullVal.Params()...), fullStats)

	a, _, _ := newCkptFixture(t, 50, 50)
	envA := newCkptEnv()
	headStats := a.Train(envA, 3)
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := a.SaveCheckpoint(path, envA); err != nil {
		t.Fatal(err)
	}

	b, bPol, bVal := newCkptFixture(t, 999, 50) // different seed: checkpoint must be authoritative
	envB := newCkptEnv()
	if err := b.LoadCheckpoint(path, envB); err != nil {
		t.Fatal(err)
	}
	if b.Iteration() != 3 {
		t.Fatalf("Iteration() = %d after load, want 3", b.Iteration())
	}
	if bPol.MaxLogStd != 0 {
		t.Fatalf("MaxLogStd = %v after load, want explicit 0", bPol.MaxLogStd)
	}
	if !math.IsInf(bPol.MinLogStd, -1) {
		t.Fatalf("MinLogStd = %v after load, want -Inf", bPol.MinLogStd)
	}
	tailStats := b.Train(envB, 3)

	combined := append(append([]IterStats(nil), headStats...), tailStats...)
	for i := range fullStats {
		if fullStats[i] != combined[i] {
			t.Fatalf("iter %d stats diverge after resume:\nfull    %+v\nresumed %+v", i, fullStats[i], combined[i])
		}
	}
	resFP := fingerprint(append(bPol.Params(), bVal.Params()...), combined)
	if fullFP != resFP {
		t.Fatalf("resumed run fingerprint %#x, uninterrupted %#x", resFP, fullFP)
	}
}

// TestVecResumeBitwise is the parallel counterpart for W ∈ {1, 4}: a
// VecRunner checkpoint captures every worker's RNG stream and pending
// episode, so the resumed run matches the uninterrupted one bitwise.
func TestVecResumeBitwise(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "W=1", 4: "W=4"}[workers], func(t *testing.T) {
			factory := func(int) Env { return newCkptEnv() }

			full, fullPol, fullVal := newCkptFixture(t, 50, 50)
			vFull, err := NewVecRunner(full, factory, workers)
			if err != nil {
				t.Fatal(err)
			}
			fullStats, err := vFull.Train(6)
			if err != nil {
				t.Fatal(err)
			}
			fullFP := fingerprint(append(fullPol.Params(), fullVal.Params()...), fullStats)

			a, _, _ := newCkptFixture(t, 50, 50)
			vA, err := NewVecRunner(a, factory, workers)
			if err != nil {
				t.Fatal(err)
			}
			headStats, err := vA.Train(3)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "ckpt.json")
			if err := vA.SaveCheckpoint(path); err != nil {
				t.Fatal(err)
			}

			b, bPol, bVal := newCkptFixture(t, 999, 50)
			vB, err := NewVecRunner(b, factory, workers)
			if err != nil {
				t.Fatal(err)
			}
			if err := vB.LoadCheckpoint(path); err != nil {
				t.Fatal(err)
			}
			tailStats, err := vB.Train(3)
			if err != nil {
				t.Fatal(err)
			}

			combined := append(append([]IterStats(nil), headStats...), tailStats...)
			for i := range fullStats {
				if fullStats[i] != combined[i] {
					t.Fatalf("iter %d stats diverge after resume:\nfull    %+v\nresumed %+v", i, fullStats[i], combined[i])
				}
			}
			resFP := fingerprint(append(bPol.Params(), bVal.Params()...), combined)
			if fullFP != resFP {
				t.Fatalf("resumed W=%d fingerprint %#x, uninterrupted %#x", workers, resFP, fullFP)
			}
		})
	}
}

// TestA2CResumeBitwise: the A2C checkpoint round-trips the same way.
func TestA2CResumeBitwise(t *testing.T) {
	build := func(seed uint64) (*A2C, *GaussianPolicy, *nn.MLP) {
		rng := mathx.NewRNG(seed)
		policy := NewGaussianPolicy(nn.NewMLP(rng, []int{1, 8, 1}, nn.Tanh), -0.5)
		value := nn.NewMLP(rng, []int{1, 8, 1}, nn.Tanh)
		cfg := DefaultA2CConfig()
		cfg.RolloutSteps = 50
		a, err := NewA2C(policy, value, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		return a, policy, value
	}

	full, fullPol, fullVal := build(89)
	fullStats := full.Train(newCkptEnv(), 4)
	fullFP := fingerprint(append(fullPol.Params(), fullVal.Params()...), fullStats)

	a, _, _ := build(89)
	envA := newCkptEnv()
	headStats := a.Train(envA, 2)
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := a.SaveCheckpoint(path, envA); err != nil {
		t.Fatal(err)
	}

	b, bPol, bVal := build(1234)
	envB := newCkptEnv()
	if err := b.LoadCheckpoint(path, envB); err != nil {
		t.Fatal(err)
	}
	tailStats := b.Train(envB, 2)

	combined := append(append([]IterStats(nil), headStats...), tailStats...)
	for i := range fullStats {
		if fullStats[i] != combined[i] {
			t.Fatalf("iter %d stats diverge after resume:\nfull    %+v\nresumed %+v", i, fullStats[i], combined[i])
		}
	}
	resFP := fingerprint(append(bPol.Params(), bVal.Params()...), combined)
	if fullFP != resFP {
		t.Fatalf("resumed A2C fingerprint %#x, uninterrupted %#x", resFP, fullFP)
	}
}

// TestTrainCheckpointedCrashResume drives the full crash-safe loop: a fault
// injected at the "rl.train.iter" point simulates the process dying between
// iterations 3 and 4; a freshly-built (different-seed) trainer pointed at
// the same checkpoint directory resumes and finishes, and the combined run
// matches the uninterrupted one bitwise.
func TestTrainCheckpointedCrashResume(t *testing.T) {
	ckpt := CheckpointConfig{Dir: t.TempDir(), Every: 1, Keep: 3}

	full, fullPol, fullVal := newCkptFixture(t, 50, 50)
	fullStats := full.Train(newCkptEnv(), 6)
	fullFP := fingerprint(append(fullPol.Params(), fullVal.Params()...), fullStats)

	errCrash := errors.New("simulated crash")
	a, _, _ := newCkptFixture(t, 50, 50)
	faults.Set("rl.train.iter", faults.FailN(errCrash, func(args ...any) bool {
		return args[0].(int) == 3
	}))
	headStats, err := a.TrainCheckpointed(newCkptEnv(), 6, ckpt)
	faults.Clear("rl.train.iter")
	if !errors.Is(err, errCrash) {
		t.Fatalf("err = %v, want simulated crash", err)
	}
	if len(headStats) != 3 {
		t.Fatalf("completed %d iterations before crash, want 3", len(headStats))
	}

	b, bPol, bVal := newCkptFixture(t, 999, 50)
	tailStats, err := b.TrainCheckpointed(newCkptEnv(), 6, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tailStats) != 3 {
		t.Fatalf("resumed run executed %d iterations, want 3", len(tailStats))
	}

	combined := append(append([]IterStats(nil), headStats...), tailStats...)
	for i := range fullStats {
		if fullStats[i] != combined[i] {
			t.Fatalf("iter %d stats diverge after crash-resume:\nfull    %+v\nresumed %+v", i, fullStats[i], combined[i])
		}
	}
	resFP := fingerprint(append(bPol.Params(), bVal.Params()...), combined)
	if fullFP != resFP {
		t.Fatalf("crash-resumed fingerprint %#x, uninterrupted %#x", resFP, fullFP)
	}
}

// TestCheckpointDirFallback: when the newest checkpoint is truncated on
// disk, LoadLatest reports the corruption, falls back to the previous one,
// and returns its iteration.
func TestCheckpointDirFallback(t *testing.T) {
	dir := t.TempDir()
	ckpt := CheckpointConfig{Dir: dir, Every: 1, Keep: 3}
	a, _, _ := newCkptFixture(t, 50, 50)
	if _, err := a.TrainCheckpointed(newCkptEnv(), 3, ckpt); err != nil {
		t.Fatal(err)
	}

	// Truncate the newest checkpoint mid-payload.
	cd := &CheckpointDir{Dir: dir}
	newest, iter, err := cd.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if iter != 3 {
		t.Fatalf("latest iter = %d, want 3", iter)
	}
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	b, _, _ := newCkptFixture(t, 999, 50)
	envB := newCkptEnv()
	got, err := cd.LoadLatest(func(path string) error { return b.LoadCheckpoint(path, envB) })
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("fell back to iter %d, want 2", got)
	}
	if b.Iteration() != 2 {
		t.Fatalf("trainer at iteration %d, want 2", b.Iteration())
	}
}

// TestCheckpointDirRetention: Keep bounds the number of files on disk.
func TestCheckpointDirRetention(t *testing.T) {
	dir := t.TempDir()
	ckpt := CheckpointConfig{Dir: dir, Every: 1, Keep: 2}
	a, _, _ := newCkptFixture(t, 50, 50)
	if _, err := a.TrainCheckpointed(newCkptEnv(), 5, ckpt); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("%d checkpoints on disk, want 2 (Keep)", len(matches))
	}
	cd := &CheckpointDir{Dir: dir, Keep: 2}
	if _, iter, err := cd.Latest(); err != nil || iter != 5 {
		t.Fatalf("Latest = (%d, %v), want (5, nil)", iter, err)
	}
}

// TestCheckpointLoadRejects: corrupt files, kind mismatches, and
// config/architecture mismatches must all error — never panic, never load
// silently-wrong state.
func TestCheckpointLoadRejects(t *testing.T) {
	dir := t.TempDir()
	a, _, _ := newCkptFixture(t, 50, 50)
	envA := newCkptEnv()
	a.Train(envA, 1)
	good := filepath.Join(dir, "good.json")
	if err := a.SaveCheckpoint(good, envA); err != nil {
		t.Fatal(err)
	}

	t.Run("garbage bytes", func(t *testing.T) {
		p := filepath.Join(dir, "garbage.json")
		os.WriteFile(p, []byte("{not json"), 0o644)
		b, _, _ := newCkptFixture(t, 50, 50)
		if err := b.LoadCheckpoint(p, newCkptEnv()); err == nil {
			t.Fatal("loaded garbage without error")
		}
	})

	t.Run("flipped payload bit", func(t *testing.T) {
		data, err := os.ReadFile(good)
		if err != nil {
			t.Fatal(err)
		}
		var env checkpointEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatal(err)
		}
		env.Payload[len(env.Payload)/2] ^= 0x01
		bad, _ := json.Marshal(&env)
		p := filepath.Join(dir, "bitflip.json")
		os.WriteFile(p, bad, 0o644)
		b, _, _ := newCkptFixture(t, 50, 50)
		err = b.LoadCheckpoint(p, newCkptEnv())
		if err == nil {
			t.Fatal("integrity check did not catch a flipped payload byte")
		}
	})

	t.Run("config mismatch", func(t *testing.T) {
		rng := mathx.NewRNG(1)
		policy := NewGaussianPolicy(nn.NewMLP(rng, []int{1, 8, 1}, nn.Tanh), -0.5)
		value := nn.NewMLP(rng, []int{1, 8, 1}, nn.Tanh)
		cfg := DefaultPPOConfig()
		cfg.RolloutSteps = 50
		cfg.LR = 0.005
		cfg.Gamma = 0.9 // differs from the saved trainer
		b, err := NewPPO(policy, value, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.LoadCheckpoint(good, newCkptEnv()); err == nil {
			t.Fatal("loaded checkpoint with mismatched config")
		}
	})

	t.Run("architecture mismatch", func(t *testing.T) {
		rng := mathx.NewRNG(1)
		policy := NewGaussianPolicy(nn.NewMLP(rng, []int{1, 16, 1}, nn.Tanh), -0.5)
		value := nn.NewMLP(rng, []int{1, 16, 1}, nn.Tanh)
		cfg := DefaultPPOConfig()
		cfg.RolloutSteps = 50
		cfg.LR = 0.005
		b, err := NewPPO(policy, value, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.LoadCheckpoint(good, newCkptEnv()); err == nil {
			t.Fatal("loaded checkpoint with mismatched architecture")
		}
	})

	t.Run("vec checkpoint into sequential trainer", func(t *testing.T) {
		c, _, _ := newCkptFixture(t, 50, 50)
		v, err := NewVecRunner(c, func(int) Env { return newCkptEnv() }, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.Train(1); err != nil {
			t.Fatal(err)
		}
		vp := filepath.Join(dir, "vec.json")
		if err := v.SaveCheckpoint(vp); err != nil {
			t.Fatal(err)
		}
		b, _, _ := newCkptFixture(t, 50, 50)
		if err := b.LoadCheckpoint(vp, newCkptEnv()); err == nil {
			t.Fatal("sequential trainer loaded a vec checkpoint")
		}
		// And a worker-count mismatch on the vec side.
		d, _, _ := newCkptFixture(t, 50, 50)
		v3, err := NewVecRunner(d, func(int) Env { return newCkptEnv() }, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := v3.LoadCheckpoint(vp); err == nil {
			t.Fatal("vec runner loaded a checkpoint with a different worker count")
		}
	})
}

// TestVecWorkerPanicContained: an injected panic inside worker 2's rollout
// must surface as a *WorkerPanicError naming worker 2 — the process
// survives, and the runner keeps working afterwards.
func TestVecWorkerPanicContained(t *testing.T) {
	p, _, _, factory := newVecFixture(64)
	v, err := NewVecRunner(p, factory, 4)
	if err != nil {
		t.Fatal(err)
	}
	faults.Set("rl.vec.collect", func(args ...any) error {
		if args[0].(int) == 2 {
			panic("injected rollout fault")
		}
		return nil
	})
	_, err = v.TrainIteration()
	faults.Clear("rl.vec.collect")

	var wpe *WorkerPanicError
	if !errors.As(err, &wpe) {
		t.Fatalf("err = %v, want *WorkerPanicError", err)
	}
	if wpe.Worker != 2 {
		t.Fatalf("panic attributed to worker %d, want 2", wpe.Worker)
	}
	if len(wpe.Stack) == 0 {
		t.Fatal("no stack captured")
	}

	// The runner must be usable again: buffers were reset, episode state
	// abandoned, and the iteration counter not advanced.
	if p.Iteration() != 0 {
		t.Fatalf("iteration counter advanced to %d through a failed iteration", p.Iteration())
	}
	stats, err := v.TrainIteration()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps != 64 {
		t.Fatalf("post-recovery iteration collected %d steps, want 64", stats.Steps)
	}
}

// TestParallelEvaluatePanicContained mirrors the rollout containment for
// evaluation shards.
func TestParallelEvaluatePanicContained(t *testing.T) {
	rng := mathx.NewRNG(3)
	policy := NewCategoricalPolicy(nn.NewMLP(rng, []int{1, 2}, nn.Identity))
	envs := []Env{
		&banditEnv{rewards: []float64{0.3, 0.9}},
		&banditEnv{rewards: []float64{0.3, 0.9}},
	}
	faults.Set("rl.eval.episode", func(args ...any) error {
		if args[0].(int) == 1 {
			panic("injected eval fault")
		}
		return nil
	})
	_, err := ParallelEvaluate(policy, envs, 8, 2)
	faults.Clear("rl.eval.episode")

	var wpe *WorkerPanicError
	if !errors.As(err, &wpe) {
		t.Fatalf("err = %v, want *WorkerPanicError", err)
	}
	if wpe.Worker != 1 {
		t.Fatalf("panic attributed to worker %d, want 1", wpe.Worker)
	}

	// Evaluation still works once the fault is cleared.
	st, err := ParallelEvaluate(policy, envs, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Episodes != 8 {
		t.Fatalf("Episodes = %d, want 8", st.Episodes)
	}
}

// TestDivergenceWatchdogRollsBack: a NaN poisoned into the value net during
// training must trip the watchdog; with a checkpoint directory available the
// trainer is rolled back to the last good checkpoint before the error is
// returned.
func TestDivergenceWatchdogRollsBack(t *testing.T) {
	ckpt := CheckpointConfig{Dir: t.TempDir(), Every: 1}
	p, _, _ := newCkptFixture(t, 50, 50)
	faults.Set("rl.train.iter", func(args ...any) error {
		if args[0].(int) == 2 {
			p.Value.Params()[0][0] = math.NaN()
		}
		return nil
	})
	_, err := p.TrainCheckpointed(newCkptEnv(), 4, ckpt)
	faults.Clear("rl.train.iter")

	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DivergenceError", err)
	}
	if de.Iteration != 2 {
		t.Fatalf("divergence at iteration %d, want 2", de.Iteration)
	}
	if !de.RolledBack {
		t.Fatal("watchdog did not roll back to the last checkpoint")
	}
	if detail := checkFinite(IterStats{}, p.Policy.Params(), p.Value.Params()); detail != "" {
		t.Fatalf("non-finite state survived rollback: %s", detail)
	}
	if p.Iteration() != 2 {
		t.Fatalf("rolled back to iteration %d, want 2", p.Iteration())
	}
}

// TestDivergenceWatchdogNoCheckpoint: without a checkpoint dir, the watchdog
// still aborts with a diagnostic (no rollback to offer).
func TestDivergenceWatchdogNoCheckpoint(t *testing.T) {
	p, _, _ := newCkptFixture(t, 50, 50)
	faults.Set("rl.train.iter", func(args ...any) error {
		if args[0].(int) == 1 {
			p.Value.Params()[0][0] = math.Inf(1)
		}
		return nil
	})
	_, err := p.TrainCheckpointed(newCkptEnv(), 3, CheckpointConfig{})
	faults.Clear("rl.train.iter")

	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DivergenceError", err)
	}
	if de.RolledBack {
		t.Fatal("claims rollback with no checkpoint directory")
	}
}

// TestCheckpointDirOwnershipGuard covers the shared-directory prune race:
// once one CheckpointDir value has claimed the directory, Save through any
// other — same process or another live one — fails with a typed
// *DirOwnedError instead of pruning against a manifest someone else is
// rewriting. Release returns the directory to the legacy unclaimed state.
func TestCheckpointDirOwnershipGuard(t *testing.T) {
	dir := t.TempDir()
	writeN := func(d *CheckpointDir, iter int) error {
		return d.Save(iter, func(path string) error {
			return os.WriteFile(path, []byte("x"), 0o644)
		})
	}

	owner := &CheckpointDir{Dir: dir, Keep: 2}
	if err := owner.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := owner.Acquire(); err != nil { // idempotent for the holder
		t.Fatal(err)
	}
	if err := writeN(owner, 1); err != nil {
		t.Fatalf("owner save: %v", err)
	}

	// A second CheckpointDir value over the same directory: both Acquire
	// and Save must refuse with the typed conflict, naming the owner pid.
	intruder := &CheckpointDir{Dir: dir, Keep: 2}
	var owned *DirOwnedError
	if err := intruder.Acquire(); !errors.As(err, &owned) {
		t.Fatalf("intruder Acquire err = %v, want *DirOwnedError", err)
	}
	if owned.PID != os.Getpid() {
		t.Fatalf("conflict names pid %d, want %d", owned.PID, os.Getpid())
	}
	owned = nil
	if err := writeN(intruder, 2); !errors.As(err, &owned) {
		t.Fatalf("intruder Save err = %v, want *DirOwnedError", err)
	}
	// The guard runs before the checkpoint file is written, so the refused
	// save left no trace in the manifest.
	if _, iter, err := owner.Latest(); err != nil || iter != 1 {
		t.Fatalf("Latest = %d, %v after refused save, want 1", iter, err)
	}

	// Release: the directory is unclaimed again, legacy saves work.
	if err := owner.Release(); err != nil {
		t.Fatal(err)
	}
	if err := writeN(intruder, 2); err != nil {
		t.Fatalf("save after release: %v", err)
	}
	if _, iter, err := intruder.Latest(); err != nil || iter != 2 {
		t.Fatalf("Latest = %d, %v, want 2", iter, err)
	}
}

// TestCheckpointDirStaleLockStolen: a lock left behind by a dead process (a
// crash never calls Release) must not block training forever — Acquire
// steals it, and an unclaimed-path Save clears it.
func TestCheckpointDirStaleLockStolen(t *testing.T) {
	const deadPID = 1 << 30 // far above any real pid_max
	dir := t.TempDir()
	lock := filepath.Join(dir, "owner.lock")
	if err := os.WriteFile(lock, []byte(`{"pid":1073741824}`), 0o644); err != nil {
		t.Fatal(err)
	}

	d := &CheckpointDir{Dir: dir, Keep: 2}
	if err := d.Acquire(); err != nil {
		t.Fatalf("Acquire over dead pid %d: %v", deadPID, err)
	}
	pid, ok := readLockPID(lock)
	if !ok || pid != os.Getpid() {
		t.Fatalf("lock after steal = %d, %v, want %d", pid, ok, os.Getpid())
	}
	if err := d.Release(); err != nil {
		t.Fatal(err)
	}

	// Same stale lock, but through the unclaimed Save path: the dead claim
	// is cleared and the save proceeds.
	if err := os.WriteFile(lock, []byte(`{"pid":1073741824}`), 0o644); err != nil {
		t.Fatal(err)
	}
	e := &CheckpointDir{Dir: dir, Keep: 2}
	if err := e.Save(1, func(path string) error {
		return os.WriteFile(path, []byte("x"), 0o644)
	}); err != nil {
		t.Fatalf("Save over dead claim: %v", err)
	}
	if _, err := os.Stat(lock); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("dead claim not cleared: %v", err)
	}
}
