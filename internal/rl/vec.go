package rl

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"advnet/internal/faults"
)

// EnvFactory builds the environment instance for one rollout worker. It is
// called once per worker, in worker order, at VecRunner construction time.
// Worker 0 always exists; factories that need per-worker randomness should
// derive it deterministically from the worker index so runs are reproducible.
type EnvFactory func(worker int) Env

// VecRunner drives W independent environment instances in parallel to
// collect one PPO rollout per iteration, then performs the standard
// synchronized PPO update on the merged data.
//
// Determinism contract:
//
//   - Worker 0 *is* the sequential trainer: it shares the PPO's policy,
//     value network, RNG, rollout buffer, and pending-episode state. With
//     workers=1 a VecRunner iteration is bit-for-bit identical to
//     PPO.TrainIteration against the same environment.
//   - Workers ≥ 1 hold policy/value clones and RNG streams split from the
//     trainer RNG at construction, in worker order. For any fixed W, two
//     runs with the same seed produce identical trajectories and IterStats
//     regardless of goroutine scheduling: each worker's stream is private,
//     and buffers/stats are merged in worker order after all workers join.
//   - GAE is computed per worker buffer with that worker's own bootstrap
//     value before merging, so advantages never leak across workers.
//
// After each update the new weights are copied back to every worker clone
// via CopyParams / nn.MLP.CopyParamsFrom.
type VecRunner struct {
	ppo     *PPO
	workers []*vecWorker
}

// vecWorker is one rollout lane: an env, a collector (worker 0 shares the
// trainer's, others own clones), and a private rollout buffer.
type vecWorker struct {
	col   *collector
	env   Env
	buf   *rolloutBuffer
	steps int // rollout share per iteration

	cs        collectStats // collection results, read after join
	lastValue float64
}

// NewVecRunner builds a worker pool around an existing PPO trainer. The
// factory is invoked once per worker, in order. RolloutSteps is divided
// across workers (earlier workers take the remainder), so the data volume
// per iteration is identical to the sequential trainer's.
func NewVecRunner(p *PPO, factory EnvFactory, workers int) (*VecRunner, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("rl: NewVecRunner workers=%d", workers)
	}
	if factory == nil {
		return nil, fmt.Errorf("rl: NewVecRunner nil factory")
	}
	v := &VecRunner{ppo: p}
	base := p.cfg.RolloutSteps / workers
	rem := p.cfg.RolloutSteps % workers
	for i := 0; i < workers; i++ {
		w := &vecWorker{steps: base}
		if i < rem {
			w.steps++
		}
		w.env = factory(i)
		if w.env == nil {
			return nil, fmt.Errorf("rl: EnvFactory returned nil env for worker %d", i)
		}
		if i == 0 {
			// Worker 0 shares the trainer's state wholesale — same
			// policy, value net, RNG stream, buffer, and pending
			// episode — which is what makes W=1 exactly the
			// sequential path.
			w.buf = &p.buf
			w.col = &p.col
		} else {
			policy, err := ClonePolicy(p.Policy)
			if err != nil {
				return nil, err
			}
			w.buf = &rolloutBuffer{}
			col := newCollector(policy, p.Value.Clone(), p.rng.Split(), w.buf)
			w.col = &col
		}
		v.workers = append(v.workers, w)
	}
	return v, nil
}

// Workers returns the pool width.
func (v *VecRunner) Workers() int { return len(v.workers) }

// collectWorker runs worker i's rollout share with panic containment: a
// panic anywhere in the worker's collection (environment step, policy
// forward pass, buffer append) is recovered into a *WorkerPanicError that
// names the worker and carries the stack, instead of killing the process.
// Workers >= 1 also compute their GAE here, off the trainer goroutine.
func (v *VecRunner) collectWorker(i int, w *vecWorker) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &WorkerPanicError{Worker: i, Value: r, Stack: debug.Stack()}
		}
	}()
	if ferr := faults.Fire("rl.vec.collect", i); ferr != nil {
		return ferr
	}
	w.cs = w.col.collect(w.env, w.steps)
	w.lastValue = w.col.bootstrap()
	if i > 0 {
		w.buf.computeGAE(v.ppo.cfg.Gamma, v.ppo.cfg.Lambda, w.lastValue)
	}
	return nil
}

// resetAfterFault discards every worker's partially-collected rollout and
// pending episode. After a worker fault the merged buffer contents and
// cross-iteration episode state are untrustworthy; dropping them leaves the
// runner in a state from which training can continue (the next iteration
// resets every environment) or a checkpoint can be reloaded.
func (v *VecRunner) resetAfterFault() {
	for _, w := range v.workers {
		w.buf.reset()
		w.col.abandonEpisode()
	}
}

// TrainIteration collects one parallel rollout and performs the PPO update.
// A panic inside a rollout worker is contained: it surfaces as a
// *WorkerPanicError naming the worker, the iteration's partial data is
// discarded, and the iteration counter is not advanced.
func (v *VecRunner) TrainIteration() (IterStats, error) {
	p := v.ppo
	stats := IterStats{Iteration: p.iter}
	p.iter++

	var t0 time.Time
	if p.met != nil {
		t0 = time.Now()
	}
	errs := make([]error, len(v.workers))
	if len(v.workers) == 1 {
		// Inline: identical to the sequential trainer, no goroutines.
		errs[0] = v.collectWorker(0, v.workers[0])
	} else {
		var wg sync.WaitGroup
		for i, w := range v.workers {
			if i == 0 {
				continue
			}
			wg.Add(1)
			go func(i int, w *vecWorker) {
				defer wg.Done()
				errs[i] = v.collectWorker(i, w)
			}(i, w)
		}
		errs[0] = v.collectWorker(0, v.workers[0])
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			v.resetAfterFault()
			p.iter-- // the iteration did not complete
			return stats, err
		}
	}
	// The faulted path above skips observation: an aborted iteration has no
	// well-defined phase split and must not skew the timer distributions.
	if p.met != nil {
		p.met.Rollout.Observe(time.Since(t0))
		t0 = time.Now()
	}

	// Worker 0's transitions are already in p.buf (aliased). Compute its
	// GAE over exactly its own steps, then append the other workers'
	// finished buffers in worker order.
	p.buf.computeGAE(p.cfg.Gamma, p.cfg.Lambda, v.workers[0].lastValue)
	var cs collectStats
	for i, w := range v.workers {
		if i > 0 {
			p.buf.ensureCap(p.buf.len()+w.buf.len(), obsDimOf(w.buf), actDimOf(w.buf))
			p.buf.pushFrom(w.buf)
			w.buf.reset()
		}
		cs.steps += w.cs.steps
		cs.episodes += w.cs.episodes
		cs.epRewardSum += w.cs.epRewardSum
		cs.rewardSum += w.cs.rewardSum
	}
	mergeCollectStats(&stats, cs, p.buf.len())

	p.buf.normalizeAdvantages()
	p.update(&stats)
	p.buf.reset()
	if p.met != nil {
		p.met.Update.Observe(time.Since(t0))
		p.met.Iterations.Inc()
	}

	// Sync updated weights back to the worker clones (worker 0 already
	// shares the trainer's parameters). A sync failure means the clones no
	// longer mirror the trainer, so the runner must not continue collecting.
	for i, w := range v.workers {
		if i == 0 {
			continue
		}
		if err := CopyParams(w.col.policy, p.Policy); err != nil {
			return stats, fmt.Errorf("rl: weight sync worker %d: %w", i, err)
		}
		if err := w.col.value.CopyParamsFrom(p.Value); err != nil {
			return stats, fmt.Errorf("rl: weight sync worker %d: %w", i, err)
		}
	}
	return stats, nil
}

// obsDimOf/actDimOf report the row widths of a non-empty buffer (0 if empty,
// in which case pushFrom copies nothing anyway).
func obsDimOf(b *rolloutBuffer) int {
	if b.len() == 0 {
		return 0
	}
	return len(b.steps[0].obs)
}

func actDimOf(b *rolloutBuffer) int {
	if b.len() == 0 {
		return 0
	}
	return len(b.steps[0].action)
}

// Train runs the given number of parallel iterations, stopping at the first
// iteration error (worker panic, weight-sync failure) and returning the
// stats collected so far alongside it.
func (v *VecRunner) Train(iterations int) ([]IterStats, error) {
	out := make([]IterStats, 0, iterations)
	for i := 0; i < iterations; i++ {
		stats, err := v.TrainIteration()
		if err != nil {
			return out, err
		}
		out = append(out, stats)
	}
	return out, nil
}

// TrainParallel is the parallel counterpart of Train: it builds a VecRunner
// with the given worker count and runs it for the given iterations. With
// workers=1 the result is bit-for-bit identical to Train against factory(0).
func (p *PPO) TrainParallel(factory EnvFactory, workers, iterations int) ([]IterStats, error) {
	v, err := NewVecRunner(p, factory, workers)
	if err != nil {
		return nil, err
	}
	return v.Train(iterations)
}
