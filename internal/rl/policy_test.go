package rl

import (
	"math"
	"testing"

	"advnet/internal/mathx"
	"advnet/internal/nn"
)

func TestActionSpecValidate(t *testing.T) {
	good := []ActionSpec{
		{Discrete: true, N: 4},
		{Dim: 2, Low: []float64{0, 0}, High: []float64{1, 1}},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("valid spec rejected: %v", err)
		}
	}
	bad := []ActionSpec{
		{Discrete: true, N: 0},
		{Dim: 0},
		{Dim: 2, Low: []float64{0}, High: []float64{1, 1}},
		{Dim: 1, Low: []float64{2}, High: []float64{1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if (ActionSpec{Discrete: true, N: 3}).ActionSize() != 1 {
		t.Error("discrete action size")
	}
	if (ActionSpec{Dim: 3}).ActionSize() != 3 {
		t.Error("continuous action size")
	}
}

func TestCategoricalSampleDistribution(t *testing.T) {
	rng := mathx.NewRNG(1)
	net := nn.NewMLP(rng, []int{2, 8, 3}, nn.Tanh)
	p := NewCategoricalPolicy(net)
	obs := []float64{0.5, -0.5}
	probs := p.probs(obs)

	counts := make([]int, 3)
	const n = 50000
	for i := 0; i < n; i++ {
		a, logp := p.Sample(rng, obs)
		idx := int(a[0])
		counts[idx]++
		if math.Abs(logp-math.Log(probs[idx]+1e-12)) > 1e-9 {
			t.Fatalf("sample logp inconsistent")
		}
	}
	for i := range probs {
		got := float64(counts[i]) / n
		if math.Abs(got-probs[i]) > 0.01 {
			t.Errorf("action %d frequency %v, want %v", i, got, probs[i])
		}
	}
}

func TestCategoricalModeIsArgmax(t *testing.T) {
	rng := mathx.NewRNG(2)
	net := nn.NewMLP(rng, []int{2, 4}, nn.Identity)
	p := NewCategoricalPolicy(net)
	obs := []float64{1, -1}
	mode := int(p.Mode(obs)[0])
	probs := p.probs(obs)
	if mode != mathx.ArgMax(probs) {
		t.Fatal("mode is not argmax")
	}
}

func TestCategoricalEntropyBounds(t *testing.T) {
	rng := mathx.NewRNG(3)
	net := nn.NewMLP(rng, []int{2, 5}, nn.Identity)
	p := NewCategoricalPolicy(net)
	h := p.Entropy([]float64{0.2, 0.7})
	if h < 0 || h > math.Log(5)+1e-9 {
		t.Fatalf("entropy %v out of [0, log 5]", h)
	}
}

// numericPolicyGrad computes d f / d param[idx] by central differences.
func numericPolicyGrad(f func() float64, param []float64, idx int) float64 {
	const h = 1e-6
	orig := param[idx]
	param[idx] = orig + h
	fp := f()
	param[idx] = orig - h
	fm := f()
	param[idx] = orig
	return (fp - fm) / (2 * h)
}

func checkPolicyBackward(t *testing.T, p Policy, obs, action []float64, wLogp, wEnt float64) {
	t.Helper()
	p.ZeroGrad()
	p.Backward(obs, action, wLogp, wEnt)
	grads := p.Grads()
	params := p.Params()
	obj := func() float64 {
		return wLogp*p.LogProb(obs, action) + wEnt*p.Entropy(obs)
	}
	for pi := range params {
		for idx := 0; idx < len(params[pi]); idx += 2 {
			want := numericPolicyGrad(obj, params[pi], idx)
			got := grads[pi][idx]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("param[%d][%d]: grad %v, numeric %v", pi, idx, got, want)
			}
		}
	}
}

func TestCategoricalBackwardNumeric(t *testing.T) {
	rng := mathx.NewRNG(5)
	net := nn.NewMLP(rng, []int{3, 6, 4}, nn.Tanh)
	p := NewCategoricalPolicy(net)
	obs := []float64{0.1, -0.4, 0.9}
	checkPolicyBackward(t, p, obs, []float64{2}, 1.0, 0.0)
	checkPolicyBackward(t, p, obs, []float64{0}, -0.7, 0.3)
	checkPolicyBackward(t, p, obs, []float64{3}, 0.0, 1.0)
}

func TestGaussianBackwardNumeric(t *testing.T) {
	rng := mathx.NewRNG(7)
	net := nn.NewMLP(rng, []int{3, 5, 2}, nn.Tanh)
	p := NewGaussianPolicy(net, -0.3)
	obs := []float64{0.3, 0.1, -0.8}
	action := []float64{0.5, -1.2}
	checkPolicyBackward(t, p, obs, action, 1.0, 0.0)
	checkPolicyBackward(t, p, obs, action, -0.5, 0.2)
	checkPolicyBackward(t, p, obs, action, 0.0, 1.0)
}

func TestGaussianLogProbAnalytic(t *testing.T) {
	rng := mathx.NewRNG(9)
	// Identity net with zero weights => mean = bias = 0.
	net := nn.NewMLP(rng, []int{1, 1}, nn.Identity)
	mathx.Fill(net.Params()[0], 0)
	mathx.Fill(net.Params()[1], 0)
	p := NewGaussianPolicy(net, 0) // std = 1
	obs := []float64{0}
	logp := p.LogProb(obs, []float64{0})
	want := -0.5 * math.Log(2*math.Pi)
	if math.Abs(logp-want) > 1e-12 {
		t.Fatalf("logp(0) = %v, want %v", logp, want)
	}
	logp1 := p.LogProb(obs, []float64{1})
	if math.Abs(logp1-(want-0.5)) > 1e-12 {
		t.Fatalf("logp(1) = %v, want %v", logp1, want-0.5)
	}
}

func TestGaussianSampleMoments(t *testing.T) {
	rng := mathx.NewRNG(11)
	net := nn.NewMLP(rng, []int{1, 1}, nn.Identity)
	mathx.Fill(net.Params()[0], 0)
	net.Params()[1][0] = 2.0 // mean = 2
	p := NewGaussianPolicy(net, math.Log(0.5))
	obs := []float64{0}
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		a, _ := p.Sample(rng, obs)
		sum += a[0]
		sumSq += a[0] * a[0]
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-2) > 0.01 {
		t.Errorf("sample mean %v, want 2", mean)
	}
	if math.Abs(std-0.5) > 0.01 {
		t.Errorf("sample std %v, want 0.5", std)
	}
	mode := p.Mode(obs)
	if math.Abs(mode[0]-2) > 1e-12 {
		t.Errorf("mode %v, want 2", mode[0])
	}
}

func TestGaussianEntropy(t *testing.T) {
	rng := mathx.NewRNG(13)
	net := nn.NewMLP(rng, []int{1, 2}, nn.Identity)
	p := NewGaussianPolicy(net, 0)
	want := 2 * 0.5 * (math.Log(2*math.Pi) + 1) // two unit-std dims
	if got := p.Entropy([]float64{0}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("entropy %v, want %v", got, want)
	}
}
