package rl

import (
	"math"
	"testing"

	"advnet/internal/mathx"
	"advnet/internal/nn"
)

// gemmRelErr returns |a−b| / max(1, |a|, |b|).
func gemmRelErr(a, b float64) float64 {
	d := math.Abs(a - b)
	return d / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// checkParamsClose asserts two parameter sets agree to tol relative error.
func checkParamsClose(t *testing.T, a, b [][]float64, tol float64, what string) {
	t.Helper()
	for pi := range a {
		for i := range a[pi] {
			if e := gemmRelErr(a[pi][i], b[pi][i]); e > tol {
				t.Fatalf("%s[%d][%d]: %v vs %v (rel err %v)", what, pi, i, a[pi][i], b[pi][i], e)
			}
		}
	}
}

// TestCategoricalGEMMMatchesBatchEval: a GEMM-mode policy's BatchEval and
// BatchGrad must agree with the default row-loop mode to rounding, including
// after the lazily-sized cache is regrown for a larger batch.
func TestCategoricalGEMMMatchesBatchEval(t *testing.T) {
	rng := mathx.NewRNG(311)
	ref := NewCategoricalPolicy(nn.NewMLP(rng, []int{3, 8, 4}, nn.Tanh))
	g := ref.Clone()
	g.SetBatchGEMM(true)

	// Two batch sizes: the second forces ensureBatch to regrow the cache,
	// which must preserve GEMM mode.
	for _, n := range []int{4, 12} {
		obs := make([]float64, n*3)
		act := make([]float64, n)
		for i := range obs {
			obs[i] = rng.Norm()
		}
		for i := range act {
			act[i] = float64(rng.Intn(4))
		}
		logpRef := make([]float64, n)
		entRef := make([]float64, n)
		logpG := make([]float64, n)
		entG := make([]float64, n)
		wLogp := make([]float64, n)
		for i := range wLogp {
			wLogp[i] = rng.Norm()
		}

		ref.ZeroGrad()
		ref.BatchEval(obs, act, n, logpRef, entRef)
		ref.BatchGrad(wLogp, -0.01)

		g.ZeroGrad()
		g.BatchEval(obs, act, n, logpG, entG)
		g.BatchGrad(wLogp, -0.01)

		for i := 0; i < n; i++ {
			if e := gemmRelErr(logpRef[i], logpG[i]); e > 1e-9 {
				t.Fatalf("n=%d logp[%d]: %v vs %v", n, i, logpRef[i], logpG[i])
			}
			if e := gemmRelErr(entRef[i], entG[i]); e > 1e-9 {
				t.Fatalf("n=%d ent[%d]: %v vs %v", n, i, entRef[i], entG[i])
			}
		}
		checkParamsClose(t, ref.Grads(), g.Grads(), 1e-9, "grad")
	}
}

// TestGaussianGEMMMatchesBatchEval: same equivalence for the continuous
// policy, whose BatchGrad also accumulates log-std gradients.
func TestGaussianGEMMMatchesBatchEval(t *testing.T) {
	rng := mathx.NewRNG(313)
	ref := NewGaussianPolicy(nn.NewMLP(rng, []int{2, 6, 2}, nn.Tanh), -0.5)
	g := ref.Clone()
	g.SetBatchGEMM(true)

	const n = 9
	obs := make([]float64, n*2)
	act := make([]float64, n*2)
	for i := range obs {
		obs[i] = rng.Norm()
		act[i] = rng.Norm()
	}
	logpRef := make([]float64, n)
	entRef := make([]float64, n)
	logpG := make([]float64, n)
	entG := make([]float64, n)
	wLogp := make([]float64, n)
	for i := range wLogp {
		wLogp[i] = rng.Norm()
	}

	ref.ZeroGrad()
	ref.BatchEval(obs, act, n, logpRef, entRef)
	ref.BatchGrad(wLogp, -0.01)

	g.ZeroGrad()
	g.BatchEval(obs, act, n, logpG, entG)
	g.BatchGrad(wLogp, -0.01)

	for i := 0; i < n; i++ {
		if e := gemmRelErr(logpRef[i], logpG[i]); e > 1e-9 {
			t.Fatalf("logp[%d]: %v vs %v", i, logpRef[i], logpG[i])
		}
		if e := gemmRelErr(entRef[i], entG[i]); e > 1e-9 {
			t.Fatalf("ent[%d]: %v vs %v", i, entRef[i], entG[i])
		}
	}
	checkParamsClose(t, ref.Grads(), g.Grads(), 1e-9, "grad")
}

// newGEMMPair builds two identically-seeded PPO trainers, one default and
// one with cfg.GEMM set.
func newGEMMPair(gemm bool) (*PPO, *CategoricalPolicy, *nn.MLP) {
	rng := mathx.NewRNG(123)
	policy := NewCategoricalPolicy(nn.NewMLP(rng, []int{1, 6, 3}, nn.Tanh))
	value := nn.NewMLP(rng, []int{1, 6, 1}, nn.Tanh)
	cfg := DefaultPPOConfig()
	cfg.RolloutSteps = 64
	cfg.GEMM = gemm
	p, err := NewPPO(policy, value, cfg, rng)
	if err != nil {
		panic(err)
	}
	return p, policy, value
}

// TestPPOGEMMCloseToDefault: one PPO iteration from identical seeds must
// produce near-identical stats and parameters whether the update runs through
// the row loops or the GEMM kernels — rollout collection consumes the same
// RNG stream, so the only divergence is floating-point summation order.
func TestPPOGEMMCloseToDefault(t *testing.T) {
	ref, refPol, refVal := newGEMMPair(false)
	g, gPol, gVal := newGEMMPair(true)
	env1 := &banditEnv{rewards: []float64{0, 1, 0.5}}
	env2 := &banditEnv{rewards: []float64{0, 1, 0.5}}

	s1 := ref.TrainIteration(env1)
	s2 := g.TrainIteration(env2)

	if s1.Steps != s2.Steps || s1.Episodes != s2.Episodes {
		t.Fatalf("rollouts diverge: %+v vs %+v", s1, s2)
	}
	for _, c := range [][3]float64{
		{s1.PolicyLoss, s2.PolicyLoss, 1e-6},
		{s1.ValueLoss, s2.ValueLoss, 1e-6},
		{s1.Entropy, s2.Entropy, 1e-6},
	} {
		if e := gemmRelErr(c[0], c[1]); e > c[2] {
			t.Fatalf("stat diverges: %v vs %v (rel err %v)", c[0], c[1], e)
		}
	}
	checkParamsClose(t, refPol.Params(), gPol.Params(), 1e-7, "policy param")
	checkParamsClose(t, refVal.Params(), gVal.Params(), 1e-7, "value param")
}

// TestA2CGEMMCloseToDefault: same single-iteration equivalence for the A2C
// fused batched update.
func TestA2CGEMMCloseToDefault(t *testing.T) {
	build := func(gemm bool) (*A2C, *CategoricalPolicy, *nn.MLP) {
		rng := mathx.NewRNG(222)
		policy := NewCategoricalPolicy(nn.NewMLP(rng, []int{1, 6, 3}, nn.Tanh))
		value := nn.NewMLP(rng, []int{1, 6, 1}, nn.Tanh)
		cfg := DefaultA2CConfig()
		cfg.RolloutSteps = 64
		cfg.GEMM = gemm
		a, err := NewA2C(policy, value, cfg, rng)
		if err != nil {
			panic(err)
		}
		return a, policy, value
	}
	ref, refPol, refVal := build(false)
	g, gPol, gVal := build(true)
	env1 := &banditEnv{rewards: []float64{0, 1, 0.5}}
	env2 := &banditEnv{rewards: []float64{0, 1, 0.5}}

	s1 := ref.TrainIteration(env1)
	s2 := g.TrainIteration(env2)

	for _, c := range [][3]float64{
		{s1.PolicyLoss, s2.PolicyLoss, 1e-6},
		{s1.ValueLoss, s2.ValueLoss, 1e-6},
		{s1.Entropy, s2.Entropy, 1e-6},
	} {
		if e := gemmRelErr(c[0], c[1]); e > c[2] {
			t.Fatalf("stat diverges: %v vs %v (rel err %v)", c[0], c[1], e)
		}
	}
	checkParamsClose(t, refPol.Params(), gPol.Params(), 1e-7, "policy param")
	checkParamsClose(t, refVal.Params(), gVal.Params(), 1e-7, "value param")
}

// TestPPOGEMMLearnsBandit: the GEMM path must actually train, not just match
// one step.
func TestPPOGEMMLearnsBandit(t *testing.T) {
	rng := mathx.NewRNG(42)
	env := &banditEnv{rewards: []float64{0, 1, 0.2}}
	policy := NewCategoricalPolicy(nn.NewMLP(rng, []int{1, 8, 3}, nn.Tanh))
	value := nn.NewMLP(rng, []int{1, 8, 1}, nn.Tanh)
	cfg := DefaultPPOConfig()
	cfg.RolloutSteps = 128
	cfg.LR = 0.01
	cfg.GEMM = true
	p, err := NewPPO(policy, value, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Train(env, 30)
	if last := stats[len(stats)-1]; last.MeanEpReward < 0.9 {
		t.Fatalf("GEMM PPO failed bandit: mean episode reward %v", last.MeanEpReward)
	}
}

// TestVecGEMMReproducible: multi-worker parallel collection with the GEMM
// update must stay deterministic for a fixed seed. Run under -race this also
// exercises the GEMM kernels alongside the VecRunner worker pool.
func TestVecGEMMReproducible(t *testing.T) {
	run := func() ([]IterStats, uint64) {
		rng := mathx.NewRNG(123)
		policy := NewCategoricalPolicy(nn.NewMLP(rng, []int{1, 4, 3}, nn.Tanh))
		value := nn.NewMLP(rng, []int{1, 4, 1}, nn.Tanh)
		cfg := DefaultPPOConfig()
		cfg.RolloutSteps = 64
		cfg.GEMM = true
		p, err := NewPPO(policy, value, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		factory := func(worker int) Env {
			return &banditEnv{rewards: []float64{0, 1, 0.5}}
		}
		stats, err := p.TrainParallel(factory, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		return stats, fingerprint(append(policy.Params(), value.Params()...), stats)
	}
	s1, f1 := run()
	s2, f2 := run()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("iter %d stats differ across runs:\n%+v\n%+v", i, s1[i], s2[i])
		}
	}
	if f1 != f2 {
		t.Fatalf("GEMM parallel training not reproducible: %#x vs %#x", f1, f2)
	}
}
