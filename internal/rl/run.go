package rl

import (
	"fmt"
	"math"

	"advnet/internal/faults"
)

// This file holds the crash-safe training loops: periodic checkpointing with
// keep-last-K retention, a divergence watchdog that aborts (and rolls the
// trainer back to the last good checkpoint) when a loss or parameter goes
// NaN/Inf, and typed errors for worker-panic containment.

// WorkerPanicError reports a panic recovered inside one parallel rollout
// worker or evaluation shard. The process survives: the panic is converted
// into this error, the panicking lane's partial state is discarded, and the
// caller decides whether to abort or reload from a checkpoint.
type WorkerPanicError struct {
	Worker int    // index of the worker/shard that panicked
	Value  any    // the recovered panic value
	Stack  []byte // stack trace captured at recovery
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("rl: worker %d panicked: %v\n%s", e.Worker, e.Value, e.Stack)
}

// DivergenceError reports that the divergence watchdog found a NaN or Inf in
// the training statistics or parameters after an iteration. Training is
// deterministic, so retrying the same iteration would diverge identically —
// the caller must change something (hyperparameters, data) before resuming
// from the rolled-back checkpoint.
type DivergenceError struct {
	Iteration  int
	Detail     string
	RolledBack bool // trainer state was restored from the last checkpoint
}

func (e *DivergenceError) Error() string {
	msg := fmt.Sprintf("rl: divergence at iteration %d: %s", e.Iteration, e.Detail)
	if e.RolledBack {
		msg += " (trainer rolled back to last checkpoint)"
	}
	return msg
}

// CheckpointConfig controls periodic checkpointing in the TrainCheckpointed
// loops. A zero value disables checkpointing (the loops still run the
// divergence watchdog).
type CheckpointConfig struct {
	Dir   string // checkpoint directory; empty disables checkpointing
	Every int    // save every N iterations; <= 0 means every iteration
	Keep  int    // checkpoints retained; <= 0 means DefaultKeep
}

func (c CheckpointConfig) enabled() bool { return c.Dir != "" }

func (c CheckpointConfig) every() int {
	if c.Every <= 0 {
		return 1
	}
	return c.Every
}

func (c CheckpointConfig) dir() *CheckpointDir {
	return &CheckpointDir{Dir: c.Dir, Keep: c.Keep}
}

// checkFinite returns a description of the first non-finite value found in
// the iteration's loss statistics or the given parameter groups, or "".
func checkFinite(stats IterStats, groups ...[][]float64) string {
	checks := []struct {
		name string
		v    float64
	}{
		{"policy loss", stats.PolicyLoss},
		{"value loss", stats.ValueLoss},
		{"entropy", stats.Entropy},
		{"approx KL", stats.ApproxKL},
	}
	for _, c := range checks {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Sprintf("%s is %v", c.name, c.v)
		}
	}
	for gi, params := range groups {
		for pi, p := range params {
			for j, v := range p {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Sprintf("parameter set %d group %d index %d is %v", gi, pi, j, v)
				}
			}
		}
	}
	return ""
}

// trainLoop is the shared crash-safe loop body. step runs one iteration;
// save writes a checkpoint for the *completed* iteration count; load
// restores from a checkpoint path (used for rollback on divergence); params
// supplies the parameter sets the watchdog scans.
func trainLoop(
	start, iterations int,
	ckpt CheckpointConfig,
	step func() (IterStats, error),
	save func(path string) error,
	load func(path string) error,
	params func() [][][]float64,
) ([]IterStats, error) {
	var cd *CheckpointDir
	if ckpt.enabled() {
		cd = ckpt.dir()
	}
	out := make([]IterStats, 0, iterations-start)
	for i := start; i < iterations; i++ {
		// Crash-simulation point for resume tests: an injected error here
		// models the process dying between iterations.
		if err := faults.Fire("rl.train.iter", i); err != nil {
			return out, err
		}
		stats, err := step()
		if err != nil {
			return out, err
		}
		if detail := checkFinite(stats, params()...); detail != "" {
			derr := &DivergenceError{Iteration: stats.Iteration, Detail: detail}
			if cd != nil {
				if _, err := cd.LoadLatest(load); err == nil {
					derr.RolledBack = true
				}
			}
			return out, derr
		}
		out = append(out, stats)
		done := i + 1
		if cd != nil && (done%ckpt.every() == 0 || done == iterations) {
			if err := cd.Save(done, save); err != nil {
				return out, fmt.Errorf("rl: checkpoint at iteration %d: %w", done, err)
			}
		}
	}
	return out, nil
}

// TrainCheckpointed runs sequential PPO training with periodic atomic
// checkpoints and a divergence watchdog. It resumes from the newest loadable
// checkpoint in ckpt.Dir when one exists (falling back past corrupt files),
// runs until the trainer has completed `iterations` total iterations, and
// returns the stats of the iterations executed by this call. On divergence
// the trainer is rolled back to the last checkpoint and a *DivergenceError
// is returned.
func (p *PPO) TrainCheckpointed(env Env, iterations int, ckpt CheckpointConfig) ([]IterStats, error) {
	if ckpt.enabled() {
		cd := ckpt.dir()
		if _, _, err := cd.Latest(); err == nil {
			if _, err := cd.LoadLatest(func(path string) error {
				return p.LoadCheckpoint(path, env)
			}); err != nil {
				return nil, err
			}
		}
	}
	return trainLoop(p.iter, iterations, ckpt,
		func() (IterStats, error) { return p.TrainIteration(env), nil },
		func(path string) error { return p.SaveCheckpoint(path, env) },
		func(path string) error { return p.LoadCheckpoint(path, env) },
		func() [][][]float64 { return [][][]float64{p.Policy.Params(), p.Value.Params()} },
	)
}

// TrainCheckpointed is the A2C counterpart of PPO.TrainCheckpointed.
func (a *A2C) TrainCheckpointed(env Env, iterations int, ckpt CheckpointConfig) ([]IterStats, error) {
	if ckpt.enabled() {
		cd := ckpt.dir()
		if _, _, err := cd.Latest(); err == nil {
			if _, err := cd.LoadLatest(func(path string) error {
				return a.LoadCheckpoint(path, env)
			}); err != nil {
				return nil, err
			}
		}
	}
	return trainLoop(a.iter, iterations, ckpt,
		func() (IterStats, error) { return a.TrainIteration(env), nil },
		func(path string) error { return a.SaveCheckpoint(path, env) },
		func(path string) error { return a.LoadCheckpoint(path, env) },
		func() [][][]float64 { return [][][]float64{a.Policy.Params(), a.Value.Params()} },
	)
}

// TrainCheckpointed runs parallel training with periodic checkpoints, resume,
// and the divergence watchdog (see PPO.TrainCheckpointed). A recovered
// worker panic surfaces as a *WorkerPanicError; the runner's rollout state
// is reset so the caller may reload a checkpoint and continue in-process.
func (v *VecRunner) TrainCheckpointed(iterations int, ckpt CheckpointConfig) ([]IterStats, error) {
	if ckpt.enabled() {
		cd := ckpt.dir()
		if _, _, err := cd.Latest(); err == nil {
			if _, err := cd.LoadLatest(v.LoadCheckpoint); err != nil {
				return nil, err
			}
		}
	}
	p := v.ppo
	return trainLoop(p.iter, iterations, ckpt,
		v.TrainIteration,
		v.SaveCheckpoint,
		v.LoadCheckpoint,
		func() [][][]float64 { return [][][]float64{p.Policy.Params(), p.Value.Params()} },
	)
}
