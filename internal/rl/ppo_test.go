package rl

import (
	"math"
	"testing"

	"advnet/internal/mathx"
	"advnet/internal/nn"
)

func TestGAEHandComputed(t *testing.T) {
	// Two-step episode, gamma=0.5, lambda=1 (plain discounted advantage).
	b := &rolloutBuffer{}
	b.add(transition{reward: 1, value: 0.5})
	b.add(transition{reward: 2, value: 0.25, done: true})
	b.computeGAE(0.5, 1.0, 0 /* terminal */)

	// delta1 = 2 + 0 - 0.25 = 1.75 ; adv1 = 1.75
	// delta0 = 1 + 0.5*0.25 - 0.5 = 0.625 ; adv0 = 0.625 + 0.5*1*1.75 = 1.5
	if math.Abs(b.steps[1].advantage-1.75) > 1e-12 {
		t.Errorf("adv1 = %v", b.steps[1].advantage)
	}
	if math.Abs(b.steps[0].advantage-1.5) > 1e-12 {
		t.Errorf("adv0 = %v", b.steps[0].advantage)
	}
	if math.Abs(b.steps[0].ret-(1.5+0.5)) > 1e-12 {
		t.Errorf("ret0 = %v", b.steps[0].ret)
	}
}

func TestGAEBootstrapsLastValue(t *testing.T) {
	b := &rolloutBuffer{}
	b.add(transition{reward: 0, value: 0})
	b.computeGAE(1.0, 1.0, 10.0) // non-terminal, next state worth 10
	if math.Abs(b.steps[0].advantage-10) > 1e-12 {
		t.Fatalf("bootstrap advantage = %v, want 10", b.steps[0].advantage)
	}
}

func TestGAEResetsAcrossEpisodes(t *testing.T) {
	// Episode boundary (done=true) must stop advantage propagation.
	b := &rolloutBuffer{}
	b.add(transition{reward: 0, value: 0, done: true})
	b.add(transition{reward: 100, value: 0, done: true})
	b.computeGAE(1.0, 1.0, 0)
	if b.steps[0].advantage != 0 {
		t.Fatalf("advantage leaked across done: %v", b.steps[0].advantage)
	}
}

func TestNormalizeAdvantages(t *testing.T) {
	b := &rolloutBuffer{}
	for i := 0; i < 100; i++ {
		b.add(transition{advantage: float64(i)})
	}
	b.normalizeAdvantages()
	var mean, varSum float64
	for _, s := range b.steps {
		mean += s.advantage
	}
	mean /= 100
	for _, s := range b.steps {
		d := s.advantage - mean
		varSum += d * d
	}
	if math.Abs(mean) > 1e-9 {
		t.Errorf("normalized mean %v", mean)
	}
	if std := math.Sqrt(varSum / 100); math.Abs(std-1) > 1e-6 {
		t.Errorf("normalized std %v", std)
	}
}

// banditEnv is a one-step environment: action i yields reward rewards[i].
type banditEnv struct {
	rewards []float64
}

func (b *banditEnv) Reset() []float64 { return []float64{1} }
func (b *banditEnv) Step(a []float64) ([]float64, float64, bool) {
	return []float64{1}, b.rewards[int(a[0])], true
}
func (b *banditEnv) ObservationSize() int { return 1 }
func (b *banditEnv) ActionSpec() ActionSpec {
	return ActionSpec{Discrete: true, N: len(b.rewards)}
}

func TestPPOLearnsBandit(t *testing.T) {
	rng := mathx.NewRNG(42)
	env := &banditEnv{rewards: []float64{0, 1, 0.2}}
	policy := NewCategoricalPolicy(nn.NewMLP(rng, []int{1, 8, 3}, nn.Tanh))
	value := nn.NewMLP(rng, []int{1, 8, 1}, nn.Tanh)
	cfg := DefaultPPOConfig()
	cfg.RolloutSteps = 128
	cfg.LR = 0.01
	p, err := NewPPO(policy, value, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Train(env, 30)
	last := stats[len(stats)-1]
	if last.MeanEpReward < 0.9 {
		t.Fatalf("PPO failed bandit: mean episode reward %v", last.MeanEpReward)
	}
	if int(policy.Mode([]float64{1})[0]) != 1 {
		t.Fatal("mode action is not the best arm")
	}
}

// targetEnv rewards continuous actions near a fixed target; episodes last
// `horizon` steps. Observation is a constant.
type targetEnv struct {
	target  float64
	horizon int
	step    int
}

func (e *targetEnv) Reset() []float64 { e.step = 0; return []float64{1} }
func (e *targetEnv) Step(a []float64) ([]float64, float64, bool) {
	e.step++
	d := a[0] - e.target
	return []float64{1}, -d * d, e.step >= e.horizon
}
func (e *targetEnv) ObservationSize() int { return 1 }
func (e *targetEnv) ActionSpec() ActionSpec {
	return ActionSpec{Dim: 1, Low: []float64{-5}, High: []float64{5}}
}

func TestPPOLearnsContinuousTarget(t *testing.T) {
	rng := mathx.NewRNG(77)
	env := &targetEnv{target: 1.5, horizon: 8}
	policy := NewGaussianPolicy(nn.NewMLP(rng, []int{1, 8, 1}, nn.Tanh), -0.5)
	value := nn.NewMLP(rng, []int{1, 8, 1}, nn.Tanh)
	cfg := DefaultPPOConfig()
	cfg.RolloutSteps = 256
	cfg.LR = 0.005
	cfg.EntropyCoef = 0.0
	p, err := NewPPO(policy, value, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	p.Train(env, 60)
	mode := policy.Mode([]float64{1})[0]
	if math.Abs(mode-1.5) > 0.35 {
		t.Fatalf("learned mean %v, want ~1.5", mode)
	}
}

func TestPPOStatsSane(t *testing.T) {
	rng := mathx.NewRNG(5)
	env := &banditEnv{rewards: []float64{0, 1}}
	policy := NewCategoricalPolicy(nn.NewMLP(rng, []int{1, 4, 2}, nn.Tanh))
	value := nn.NewMLP(rng, []int{1, 4, 1}, nn.Tanh)
	cfg := DefaultPPOConfig()
	cfg.RolloutSteps = 64
	p, err := NewPPO(policy, value, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := p.TrainIteration(env)
	if st.Steps != 64 {
		t.Errorf("Steps = %d", st.Steps)
	}
	if st.Episodes != 64 { // bandit episodes are 1 step each
		t.Errorf("Episodes = %d", st.Episodes)
	}
	if st.Entropy < 0 || st.Entropy > math.Log(2)+1e-9 {
		t.Errorf("Entropy = %v", st.Entropy)
	}
	if st.ClipFraction < 0 || st.ClipFraction > 1 {
		t.Errorf("ClipFraction = %v", st.ClipFraction)
	}
	if st.GradStepCount == 0 {
		t.Error("no gradient steps")
	}
}

func TestPPOConfigValidation(t *testing.T) {
	rng := mathx.NewRNG(1)
	policy := NewCategoricalPolicy(nn.NewMLP(rng, []int{1, 2}, nn.Tanh))
	value := nn.NewMLP(rng, []int{1, 1}, nn.Tanh)
	bad := DefaultPPOConfig()
	bad.Gamma = 1.5
	if _, err := NewPPO(policy, value, bad, rng); err == nil {
		t.Fatal("accepted gamma > 1")
	}
	bad = DefaultPPOConfig()
	bad.RolloutSteps = 0
	if _, err := NewPPO(policy, value, bad, rng); err == nil {
		t.Fatal("accepted zero rollout")
	}
	wrongValue := nn.NewMLP(rng, []int{1, 2}, nn.Tanh)
	if _, err := NewPPO(policy, wrongValue, DefaultPPOConfig(), rng); err == nil {
		t.Fatal("accepted non-scalar value net")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	rng := mathx.NewRNG(3)
	env := &banditEnv{rewards: []float64{0.3, 0.9}}
	policy := NewCategoricalPolicy(nn.NewMLP(rng, []int{1, 2}, nn.Identity))
	st := Evaluate(policy, env, 10)
	if st.Episodes != 10 {
		t.Errorf("Episodes = %d", st.Episodes)
	}
	mode := int(policy.Mode([]float64{1})[0])
	want := env.rewards[mode]
	if math.Abs(st.MeanReward-want) > 1e-12 {
		t.Errorf("MeanReward = %v, want %v", st.MeanReward, want)
	}
	if st.StdReward > 1e-12 {
		t.Errorf("deterministic eval has nonzero std %v", st.StdReward)
	}
	if st.MeanEpLength != 1 {
		t.Errorf("MeanEpLength = %v", st.MeanEpLength)
	}
}

func TestPPODeterministicGivenSeed(t *testing.T) {
	run := func() float64 {
		rng := mathx.NewRNG(123)
		env := &banditEnv{rewards: []float64{0, 1, 0.5}}
		policy := NewCategoricalPolicy(nn.NewMLP(rng, []int{1, 4, 3}, nn.Tanh))
		value := nn.NewMLP(rng, []int{1, 4, 1}, nn.Tanh)
		cfg := DefaultPPOConfig()
		cfg.RolloutSteps = 32
		p, _ := NewPPO(policy, value, cfg, rng)
		st := p.Train(env, 3)
		return st[2].MeanEpReward
	}
	if run() != run() {
		t.Fatal("PPO training is not deterministic for a fixed seed")
	}
}

func TestA2CLearnsBandit(t *testing.T) {
	rng := mathx.NewRNG(88)
	env := &banditEnv{rewards: []float64{0, 1, 0.2}}
	policy := NewCategoricalPolicy(nn.NewMLP(rng, []int{1, 8, 3}, nn.Tanh))
	value := nn.NewMLP(rng, []int{1, 8, 1}, nn.Tanh)
	cfg := DefaultA2CConfig()
	cfg.RolloutSteps = 128
	cfg.LR = 0.01
	a, err := NewA2C(policy, value, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	stats := a.Train(env, 40)
	last := stats[len(stats)-1]
	if last.MeanEpReward < 0.85 {
		t.Fatalf("A2C failed bandit: mean episode reward %v", last.MeanEpReward)
	}
	if int(policy.Mode([]float64{1})[0]) != 1 {
		t.Fatal("mode action is not the best arm")
	}
}

func TestA2CLearnsContinuousTarget(t *testing.T) {
	rng := mathx.NewRNG(89)
	env := &targetEnv{target: -0.8, horizon: 8}
	policy := NewGaussianPolicy(nn.NewMLP(rng, []int{1, 8, 1}, nn.Tanh), -0.5)
	value := nn.NewMLP(rng, []int{1, 8, 1}, nn.Tanh)
	cfg := DefaultA2CConfig()
	cfg.RolloutSteps = 256
	cfg.LR = 0.005
	cfg.EntropyCoef = 0
	a, err := NewA2C(policy, value, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	a.Train(env, 80)
	mode := policy.Mode([]float64{1})[0]
	if math.Abs(mode-(-0.8)) > 0.4 {
		t.Fatalf("A2C learned mean %v, want ~-0.8", mode)
	}
}

func TestA2CConfigValidation(t *testing.T) {
	rng := mathx.NewRNG(90)
	policy := NewCategoricalPolicy(nn.NewMLP(rng, []int{1, 2}, nn.Tanh))
	value := nn.NewMLP(rng, []int{1, 1}, nn.Tanh)
	bad := DefaultA2CConfig()
	bad.RolloutSteps = 0
	if _, err := NewA2C(policy, value, bad, rng); err == nil {
		t.Fatal("accepted zero rollout")
	}
	wrongValue := nn.NewMLP(rng, []int{1, 2}, nn.Tanh)
	if _, err := NewA2C(policy, wrongValue, DefaultA2CConfig(), rng); err == nil {
		t.Fatal("accepted non-scalar value net")
	}
}

func TestA2CEnvSwitchResets(t *testing.T) {
	rng := mathx.NewRNG(91)
	policy := NewCategoricalPolicy(nn.NewMLP(rng, []int{1, 4, 2}, nn.Tanh))
	value := nn.NewMLP(rng, []int{1, 4, 1}, nn.Tanh)
	cfg := DefaultA2CConfig()
	cfg.RolloutSteps = 16
	a, err := NewA2C(policy, value, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	envA := &banditEnv{rewards: []float64{0, 1}}
	envB := &banditEnv{rewards: []float64{1, 0}}
	a.TrainIteration(envA)
	// Switching envs must not panic or reuse envA's carried state.
	a.TrainIteration(envB)
}
