package rl

import (
	"math"
	"testing"

	"advnet/internal/mathx"
	"advnet/internal/nn"
)

// scriptedEnv deterministically replays a fixed episode schedule: its k-th
// episode (locally) is global episode start+k·stride, whose total reward is
// rewards[g] spread over lens[g] steps. A (start=0, stride=1) instance is
// exactly what sequential Evaluate sees; a (start=w, stride=W) instance sees
// precisely the episode subsequence ParallelEvaluate assigns to worker w.
// Episodes differ from each other, so any merge-order or assignment mistake
// in the parallel path changes MeanReward/StdReward bitwise.
type scriptedEnv struct {
	rewards []float64
	lens    []int
	start   int
	stride  int
	k       int // local episode counter
	step    int
	cur     int // global episode index of the running episode
}

func (e *scriptedEnv) Reset() []float64 {
	e.cur = e.start + e.k*e.stride
	e.k++
	e.step = 0
	return []float64{1}
}

func (e *scriptedEnv) Step(a []float64) ([]float64, float64, bool) {
	e.step++
	n := e.lens[e.cur]
	return []float64{1}, e.rewards[e.cur] / float64(n), e.step >= n
}

func (e *scriptedEnv) ObservationSize() int { return 1 }
func (e *scriptedEnv) ActionSpec() ActionSpec {
	return ActionSpec{Discrete: true, N: 2}
}

func scriptedFixture(episodes int) ([]float64, []int) {
	rewards := make([]float64, episodes)
	lens := make([]int, episodes)
	rng := mathx.NewRNG(2024)
	for i := range rewards {
		rewards[i] = rng.Float64()*4 - 1 // irregular, FP-unfriendly values
		lens[i] = 1 + int(rng.Uint64()%7)
	}
	return rewards, lens
}

func testEvalPolicy() Policy {
	return NewCategoricalPolicy(nn.NewMLP(mathx.NewRNG(7), []int{1, 4, 2}, nn.Tanh))
}

// TestParallelEvaluateGolden pins the tentpole determinism contract: for
// W ∈ {1, 4} (and a non-divisor worker count for good measure),
// ParallelEvaluate must return EvalStats bitwise identical to the sequential
// Evaluate over the same global episode schedule.
func TestParallelEvaluateGolden(t *testing.T) {
	const episodes = 23
	rewards, lens := scriptedFixture(episodes)
	policy := testEvalPolicy()

	want := Evaluate(policy, &scriptedEnv{rewards: rewards, lens: lens, stride: 1}, episodes)
	for _, workers := range []int{1, 3, 4} {
		envs := make([]Env, workers)
		for w := range envs {
			envs[w] = &scriptedEnv{rewards: rewards, lens: lens, start: w, stride: workers}
		}
		got, err := ParallelEvaluate(policy, envs, episodes, workers)
		if err != nil {
			t.Fatalf("W=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("W=%d: stats diverged from sequential:\n got  %+v\n want %+v", workers, got, want)
		}
	}
	if want.StdReward == 0 {
		t.Fatal("fixture episodes are all identical; the identity check proves nothing")
	}
}

// TestParallelEvaluateReplicaEnvs covers the documented contract case:
// identical replica envs (episodes independent of instance and history)
// give W>1 results bitwise equal to the plain sequential call.
func TestParallelEvaluateReplicaEnvs(t *testing.T) {
	policy := testEvalPolicy()
	want := Evaluate(policy, &banditEnv{rewards: []float64{0.3, 0.9}}, 10)
	envs := make([]Env, 4)
	for w := range envs {
		envs[w] = &banditEnv{rewards: []float64{0.3, 0.9}}
	}
	got, err := ParallelEvaluate(policy, envs, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("replica-env parallel eval diverged: %+v vs %+v", got, want)
	}
}

// TestParallelEvaluateClampsWorkers: more workers than envs or episodes must
// degrade gracefully rather than index out of range.
func TestParallelEvaluateClampsWorkers(t *testing.T) {
	policy := testEvalPolicy()
	rewards, lens := scriptedFixture(3)
	envs := []Env{
		&scriptedEnv{rewards: rewards, lens: lens, start: 0, stride: 2},
		&scriptedEnv{rewards: rewards, lens: lens, start: 1, stride: 2},
	}
	want := Evaluate(policy, &scriptedEnv{rewards: rewards, lens: lens, stride: 1}, 3)
	got, err := ParallelEvaluate(policy, envs, 3, 8) // clamps to len(envs)=2
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("clamped eval diverged: %+v vs %+v", got, want)
	}
}

type uncloneablePolicy struct{ Policy }

func TestParallelEvaluateErrors(t *testing.T) {
	policy := testEvalPolicy()
	env := Env(&banditEnv{rewards: []float64{0, 1}})
	if _, err := ParallelEvaluate(policy, nil, 4, 2); err == nil {
		t.Error("no error for empty envs")
	}
	if _, err := ParallelEvaluate(policy, []Env{env}, 0, 1); err == nil {
		t.Error("no error for episodes=0")
	}
	if _, err := ParallelEvaluate(policy, []Env{env}, 4, 0); err == nil {
		t.Error("no error for workers=0")
	}
	if _, err := ParallelEvaluate(policy, []Env{env, nil}, 4, 2); err == nil {
		t.Error("no error for nil env")
	}
	wrapped := uncloneablePolicy{policy}
	if _, err := ParallelEvaluate(wrapped, []Env{env, env}, 4, 2); err == nil {
		t.Error("no error for uncloneable policy with workers > 1")
	}
	// …but an uncloneable policy is fine single-threaded.
	if _, err := ParallelEvaluate(wrapped, []Env{env}, 4, 1); err != nil {
		t.Errorf("uncloneable policy rejected at workers=1: %v", err)
	}
}

// TestEvaluateEmptyEpisodes documents the zero-value contract of the
// sequential path.
func TestEvaluateEmptyEpisodes(t *testing.T) {
	st := Evaluate(testEvalPolicy(), &banditEnv{rewards: []float64{0, 1}}, 0)
	if st != (EvalStats{}) {
		t.Fatalf("episodes=0 returned non-zero stats: %+v", st)
	}
}

// TestPPOValueLossReportsOptimizedObjective asserts the reported ValueLoss
// is the quantity the optimizer descends — c_V·0.5·(V−ret)² — by checking
// that halving ValueCoef exactly halves the first iteration's reported
// ValueLoss. One epoch over a single full-buffer minibatch means every value
// forward pass sees the identical pre-update parameters in both runs, and
// ValueCoef ∈ {0.5, 1.0} (powers of two) keeps the scaling exact in floating
// point, so the relationship holds bitwise, not just approximately.
func TestPPOValueLossReportsOptimizedObjective(t *testing.T) {
	run := func(coef float64) float64 {
		rng := mathx.NewRNG(9)
		env := &banditEnv{rewards: []float64{0, 1, 0.5}}
		policy := NewCategoricalPolicy(nn.NewMLP(rng, []int{1, 4, 3}, nn.Tanh))
		value := nn.NewMLP(rng, []int{1, 4, 1}, nn.Tanh)
		cfg := DefaultPPOConfig()
		cfg.RolloutSteps = 32
		cfg.Epochs = 1
		cfg.MinibatchSize = 32
		cfg.ValueCoef = coef
		p, err := NewPPO(policy, value, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		return p.TrainIteration(env).ValueLoss
	}
	half, full := run(0.5), run(1.0)
	if full <= 0 {
		t.Fatalf("degenerate fixture: ValueLoss %v", full)
	}
	if half != 0.5*full {
		t.Fatalf("ValueLoss not scaled by ValueCoef: coef=0.5 gives %v, coef=1.0 gives %v", half, full)
	}
}

// TestA2CValueLossReportsOptimizedObjective is the A2C analogue (one
// gradient step per iteration by construction).
func TestA2CValueLossReportsOptimizedObjective(t *testing.T) {
	run := func(coef float64) float64 {
		rng := mathx.NewRNG(11)
		env := &targetEnv{target: 0.5, horizon: 4}
		policy := NewGaussianPolicy(nn.NewMLP(rng, []int{1, 4, 1}, nn.Tanh), -0.5)
		value := nn.NewMLP(rng, []int{1, 4, 1}, nn.Tanh)
		cfg := DefaultA2CConfig()
		cfg.RolloutSteps = 16
		cfg.ValueCoef = coef
		a, err := NewA2C(policy, value, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		return a.TrainIteration(env).ValueLoss
	}
	half, full := run(0.5), run(1.0)
	if full <= 0 || math.IsNaN(full) {
		t.Fatalf("degenerate fixture: ValueLoss %v", full)
	}
	if half != 0.5*full {
		t.Fatalf("ValueLoss not scaled by ValueCoef: coef=0.5 gives %v, coef=1.0 gives %v", half, full)
	}
}
