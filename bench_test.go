// Package advnet's root benchmark harness regenerates every table and figure
// of the paper's evaluation (see DESIGN.md §3 for the experiment index).
// Each benchmark runs the corresponding experiment once per iteration — they
// are macro-benchmarks, so `go test -bench=.` runs each exactly once — and
// logs the rendered rows/series alongside reported shape metrics.
package advnet

import (
	"fmt"
	"testing"
	"time"

	"advnet/internal/abr"
	"advnet/internal/core"
	"advnet/internal/experiments"
	"advnet/internal/mathx"
	"advnet/internal/nn"
	"advnet/internal/rl"
	"advnet/internal/serve"
	"advnet/internal/trace"
)

// benchConfig returns the budget used by the benchmark harness: the Fast
// experiment configuration with a slightly smaller evaluation set. The
// paper's qualitative shapes (who wins, by roughly what factor, where the
// crossovers fall) hold at this scale; `cmd/experiments -full` tightens the
// statistics.
func benchConfig() experiments.Config {
	cfg := experiments.Fast()
	cfg.Traces = 30
	return cfg
}

// BenchmarkTable1ActionRanges reproduces Table 1: the congestion-control
// adversary's action ranges (bandwidth 6-24 Mbps, latency 15-60 ms, loss
// 0-10%), cross-checked against an actual episode's emitted actions.
func BenchmarkTable1ActionRanges(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(benchConfig())
		if i == 0 {
			b.Logf("\n%s", res)
		}
		for j, r := range res.Ranges {
			if res.Observed[j][0] < r[0]-1e-9 || res.Observed[j][1] > r[1]+1e-9 {
				b.Fatalf("observed actions escape Table 1 range %d: %v vs %v", j, res.Observed[j], r)
			}
		}
	}
}

// BenchmarkFigure1And2Adversarial reproduces Figures 1a, 1b, 1c and Figure
// 2: the QoE CDFs of pensieve/mpc/bb on traces from adversaries trained
// against MPC and against Pensieve plus a random baseline, and the QoE-ratio
// summaries. Paper shape: each adversary's traces push its own target's CDF
// left without making the network hostile for the other protocols, the
// targeted protocol does worse than the other on >75% of its traces, and
// random traces show no such targeting.
func BenchmarkFigure1And2Adversarial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1And2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
		// The paper's headline targeting claim: in over 75% of the
		// adversary's traces the targeted protocol does worse than the
		// other protocol (asserted at 70% to absorb the smaller
		// benchmark trace budget).
		if f := res.MPCOverPensieveOnPensieveTraces.FractionTargetWorse; f < 0.70 {
			b.Fatalf("Pensieve worse on only %.0f%% of its adversarial traces, want > 75%%", 100*f)
		}
		b.ReportMetric(res.MPCOverPensieveOnPensieveTraces.FractionTargetWorse, "fracPensieveWorse")
		b.ReportMetric(res.PensieveOverMPCOnMPCTraces.FractionTargetWorse, "fracMPCWorse")
		b.ReportMetric(res.MPCOverPensieveOnPensieveTraces.Max, "maxRatioVsPensieve")
	}
}

// BenchmarkFigure3BBWeakness reproduces Figure 3: the buffer-pinning
// adversarial trace forces BB to oscillate between bitrates while the
// offline optimum rises smoothly from a low rate, and the client buffer is
// held inside BB's 10-15 s decision band.
func BenchmarkFigure3BBWeakness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure3(benchConfig())
		if i == 0 {
			b.Logf("\n%s", res)
		}
		if res.BBSwitches < 2*res.OptSwitches {
			b.Fatalf("BB switches %d vs optimal %d: oscillation not reproduced",
				res.BBSwitches, res.OptSwitches)
		}
		if res.OptTotalQoE < res.BBTotalQoE {
			b.Fatal("offline optimum below BB")
		}
		b.ReportMetric(float64(res.BBSwitches), "bbSwitches")
		b.ReportMetric(res.InBandFraction, "bufferInBandFrac")
	}
}

// BenchmarkFigure4RobustPensieve reproduces Figure 4: Pensieve trained with
// adversarial traces injected at 90% / 70% of training versus without, on
// broadband and 3G train/test combinations. Paper shape: adversarial
// training improves QoE, most notably on broadband-training → 3G-testing
// and at the 5th percentile.
func BenchmarkFigure4RobustPensieve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
		for _, c := range res.Cells {
			if c.Train == "broadband" && c.Test == "3g" {
				b.ReportMetric(c.MeanAdv70-c.MeanNoAdv, "bb3gMeanGain70")
				b.ReportMetric(c.P5Adv70-c.P5NoAdv, "bb3gP5Gain70")
			}
		}
	}
}

// BenchmarkFigure5BBRAdversarial reproduces Figure 5: a trained adversary,
// acting entirely within BBR's design range (Table 1), holds BBR's
// throughput far below the link capacity (paper: 45-65% of capacity;
// our emulated BBR is hit even harder — see EXPERIMENTS.md).
func BenchmarkFigure5BBRAdversarial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5And6(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
		if res.MeanUtil > 0.75 {
			b.Fatalf("adversary left BBR at %.2f utilization", res.MeanUtil)
		}
		if res.BenignUtil < 0.85 {
			b.Fatalf("benign BBR only reaches %.2f utilization", res.BenignUtil)
		}
		b.ReportMetric(res.MeanUtil, "advUtil")
		b.ReportMetric(res.BenignUtil, "benignUtil")
	}
}

// BenchmarkFigure6AdversaryActions reproduces Figure 6: the adversary's
// deterministic (noise-free) actions fluctuate exactly when BBR runs its
// probing phases, and the chosen loss rate stays near zero.
func BenchmarkFigure6AdversaryActions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5And6(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
		if res.ProbeActionDelta <= res.SteadyActionDelta {
			b.Fatalf("actions do not fluctuate more at probing phases: %v vs %v",
				res.ProbeActionDelta, res.SteadyActionDelta)
		}
		b.ReportMetric(res.ProbeActionDelta/res.SteadyActionDelta, "probeToSteadyDelta")
		b.ReportMetric(res.MeanDetLoss, "meanLossAction")
	}
}

// BenchmarkAblationSmoothingPenalty measures DESIGN.md's smoothing ablation:
// the penalty buys smoother (more explainable) traces.
func BenchmarkAblationSmoothingPenalty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSmoothing(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
		b.ReportMetric(res.SmoothnessWith, "smoothnessWith")
		b.ReportMetric(res.SmoothnessWithout, "smoothnessWithout")
	}
}

// BenchmarkAblationOptBaseline measures the reward-definition ablation: with
// the r_opt term the adversary's traces keep high optimal headroom
// (meaningful examples); the naive −r_proto reward drifts toward trivially
// hostile conditions.
func BenchmarkAblationOptBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationOptBaseline(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
		b.ReportMetric(res.OptQoERegret, "optQoERegretReward")
		b.ReportMetric(res.OptQoENaive, "optQoENaiveReward")
	}
}

// BenchmarkAblationReplayFidelity measures §2.1's replay question: chunk-
// indexed replay reproduces the online episode exactly; wall-time replay
// drifts.
func BenchmarkAblationReplayFidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblationReplayFidelity(benchConfig())
		if i == 0 {
			b.Logf("\n%s", res)
		}
		if diff := res.OnlineQoE - res.ChunkReplayQoE; diff > 1e-9 || diff < -1e-9 {
			b.Fatalf("chunk replay diverged from online: %v vs %v", res.ChunkReplayQoE, res.OnlineQoE)
		}
		b.ReportMetric(res.OnlineQoE-res.WallTimeQoE, "wallTimeDrift")
	}
}

// BenchmarkAblationNetSize measures the architecture ablation the paper
// reports in §3 (smaller ABR-adversary nets yielded lower rewards).
func BenchmarkAblationNetSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationNetSize(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
		for _, r := range res.Rows {
			if r.Arch == "32-16 (paper)" {
				b.ReportMetric(r.FinalReward, "paperArchReward")
			}
		}
	}
}

// BenchmarkAblationOnlineVsTraceBased measures §2.1's formulation
// comparison: at an equal simulated-chunk budget the online adversary's
// traces should hurt the target at least as much as the trace-based
// adversary's, because the online formulation extracts a data point per
// chunk rather than per trace.
func BenchmarkAblationOnlineVsTraceBased(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationOnlineVsTraceBased(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
		b.ReportMetric(res.OnlineTargetQoE, "onlineTargetQoE")
		b.ReportMetric(res.TraceTargetQoE, "traceTargetQoE")
		b.ReportMetric(res.RandomTargetQoE, "randomTargetQoE")
	}
}

// BenchmarkMLPForward measures the cached forward pass of the hot-path MLP
// shape (the ABR adversary's 32-16 network). The Into variants reuse a
// caller-held cache, so the steady state must be allocation-free.
func BenchmarkMLPForward(b *testing.B) {
	rng := mathx.NewRNG(3)
	m := nn.NewMLP(rng, []int{24, 32, 16, 1}, nn.Tanh)
	cache := m.NewCache()
	x := make([]float64, 24)
	for i := range x {
		x[i] = rng.Uniform(-1, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForwardInto(cache, x)
	}
}

// BenchmarkMLPBackward measures the cached backward pass (gradient
// accumulation into the network's grad buffers; also allocation-free).
func BenchmarkMLPBackward(b *testing.B) {
	rng := mathx.NewRNG(3)
	m := nn.NewMLP(rng, []int{24, 32, 16, 1}, nn.Tanh)
	cache := m.NewCache()
	x := make([]float64, 24)
	for i := range x {
		x[i] = rng.Uniform(-1, 1)
	}
	m.ForwardInto(cache, x)
	dOut := []float64{1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BackwardInto(cache, dOut)
	}
}

// BenchmarkForwardBatch compares the two BatchCache execution modes on a
// Pensieve-sized MLP (the robustification pipeline's policy shape) at a
// PPO-minibatch batch size: the default row-at-a-time loops (bit-for-bit
// identical to per-sample passes) versus the blocked GEMM kernels (same
// arithmetic, reordered summation, higher throughput). Each iteration runs
// one forward and one backward pass over the minibatch; both modes must be
// allocation-free. Results are recorded in EXPERIMENTS.md.
func BenchmarkForwardBatch(b *testing.B) {
	const levels = 6
	const batch = 64
	rng := mathx.NewRNG(11)
	m := abr.NewPensieveNet(rng, levels)
	in, out := m.InputSize(), m.OutputSize()
	xs := make([]float64, batch*in)
	for i := range xs {
		xs[i] = rng.Uniform(-1, 1)
	}
	douts := make([]float64, batch*out)
	for i := range douts {
		douts[i] = rng.Uniform(-1, 1)
	}
	for _, mode := range []struct {
		name string
		c    *nn.BatchCache
	}{
		{"rows", m.NewBatchCache(batch)},
		{"gemm", m.NewBatchCacheGEMM(batch)},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ForwardBatch(mode.c, xs, batch)
				m.BackwardBatch(mode.c, douts)
			}
		})
	}
}

// BenchmarkPPOTrainIteration measures one full PPO iteration (rollout
// collection + minibatch update) of the ABR adversary against MPC, with the
// single-threaded path and the 4-worker pool. On a multi-core machine W=4
// should approach a 4× speedup of the collection phase; on one core it mainly
// measures the pool's bookkeeping overhead.
func BenchmarkPPOTrainIteration(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("W=%d", workers), func(b *testing.B) {
			video := abr.NewVideo(mathx.NewRNG(1), abr.DefaultVideoConfig())
			cfg := core.DefaultABRAdversaryConfig()
			rng := mathx.NewRNG(7)
			adv := core.NewABRAdversary(rng, video.Levels(), cfg)
			env := core.NewABREnv(video, abr.NewMPC(), cfg)
			value := nn.NewMLP(rng, []int{env.ObservationSize(), 32, 16, 1}, nn.Tanh)
			pcfg := rl.DefaultPPOConfig()
			pcfg.RolloutSteps = 512
			ppo, err := rl.NewPPO(adv.Policy, value, pcfg, rng)
			if err != nil {
				b.Fatal(err)
			}
			step := func() { ppo.TrainIteration(env) }
			if workers > 1 {
				factory, err := core.ABREnvFactory(video, abr.NewMPC(), cfg, workers)
				if err != nil {
					b.Fatal(err)
				}
				v, err := rl.NewVecRunner(ppo, factory, workers)
				if err != nil {
					b.Fatal(err)
				}
				step = func() {
					if _, err := v.TrainIteration(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		})
	}
}

// BenchmarkEvaluateABR measures the parallel evaluation layer: one full
// dataset evaluation (MPC over 64 chunk-indexed trace replays) with the
// sequential path and the 4-worker fan-out. On a multi-core machine W=4
// approaches a 4× speedup — trace evaluations are embarrassingly parallel
// and share no state — while on one core it measures the fan-out's
// bookkeeping overhead. Results are identical for every worker count (see
// TestEvaluateABRParallelGolden), so the speedup is free of semantic risk.
func BenchmarkEvaluateABR(b *testing.B) {
	video := abr.NewVideo(mathx.NewRNG(1), abr.DefaultVideoConfig())
	ds := trace.GenerateFCCLikeDataset(mathx.NewRNG(21), trace.DefaultFCCLike(), 64, "fcc")
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("W=%d", workers), func(b *testing.B) {
			p := abr.NewMPC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.EvaluateABRChunked(video, ds, p, 0.08, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeStorm measures the policy-serving engine under a request
// storm against the single-request Predict baseline (the pre-engine serving
// path). The engine aggregates concurrent requests into GEMM minibatches, so
// at batch ≥16 its throughput should exceed the baseline's by ≥3× — the
// batched forward pass amortizes per-layer loop overhead and the pooled
// request path removes Predict's per-call cache allocations. avgBatch reports
// the realized batching density and p50/p95/p99 the enqueue→computed serving
// latency in microseconds (measured numbers in EXPERIMENTS.md and
// BENCH_serve.json).
func BenchmarkServeStorm(b *testing.B) {
	const levels = 6
	rng := mathx.NewRNG(13)
	net := abr.NewPensieveNet(rng, levels)
	feats := make([]float64, net.InputSize())
	for i := range feats {
		feats[i] = rng.Uniform(-1, 1)
	}

	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = mathx.ArgMax(net.Predict(feats))
		}
	})
	for _, batch := range []int{16, 64} {
		b.Run(fmt.Sprintf("storm/batch=%d", batch), func(b *testing.B) {
			eng := serve.MustNewEngine(serve.NewRegistry(net), serve.Config{
				Workers:  1,
				MaxBatch: batch,
				MaxWait:  200 * time.Microsecond,
			})
			defer eng.Close()
			b.SetParallelism(2 * batch) // concurrent clients feed the batcher
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := eng.Select(feats); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			st := eng.Stats()
			b.ReportMetric(st.AvgBatch, "avgBatch")
			b.ReportMetric(st.Latency.P50, "p50us")
			b.ReportMetric(st.Latency.P99, "p99us")
		})
	}
}

// BenchmarkExtensionRoutingAdversary runs the framework transposed to the
// routing domain (§1/§2.3/§5): a demand-matrix adversary against
// shortest-path routing on Abilene, scored by max link utilization against
// the optimal-routing oracle. Shape: the target scheme's congestion exceeds
// both ECMP's and the oracle's on the adversarial demands.
func BenchmarkExtensionRoutingAdversary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtensionRouting(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
		if res.SPFMLU <= res.OracleMLU {
			b.Fatalf("no optimality gap: SPF %v vs oracle %v", res.SPFMLU, res.OracleMLU)
		}
		b.ReportMetric(res.SPFMLU, "spfMLU")
		b.ReportMetric(res.OracleMLU, "oracleMLU")
	}
}
