// Robust Pensieve walkthrough: reproduce the §2.3/§3.3 training pipeline.
//
// Trains a Pensieve-style agent on a synthetic broadband dataset twice: once
// normally, and once pausing at 70% of the budget to train an adversary
// against the partially-trained agent, generate adversarial traces, and
// finish training with them mixed into the dataset. Both variants are then
// evaluated on broadband and 3G test sets — the Figure 4 comparison.
//
// Run it with:
//
//	go run ./examples/robust-pensieve [-iters N]
//
// Expect a few minutes at the default budget; the gains concentrate in the
// 3G transfer row and the 5th percentile, so small budgets can be noisy.
package main

import (
	"flag"
	"fmt"

	"advnet/internal/abr"
	"advnet/internal/core"
	"advnet/internal/mathx"
	"advnet/internal/stats"
	"advnet/internal/trace"
)

func main() {
	iters := flag.Int("iters", 60, "total Pensieve PPO iterations")
	flag.Parse()

	rng := mathx.NewRNG(5)
	video := abr.NewVideo(rng, abr.DefaultVideoConfig())

	fccTrain := trace.GenerateFCCLikeDataset(rng, trace.DefaultFCCLike(), 40, "fcc-train")
	fccTest := trace.GenerateFCCLikeDataset(rng, trace.DefaultFCCLike(), 40, "fcc-test")
	g3Test := trace.GenerateThreeGLikeDataset(rng, trace.DefaultThreeGLike(), 40, "3g-test")

	train := func(frac float64) *abr.Pensieve {
		cfg := core.DefaultRobustTrainConfig()
		cfg.TotalIterations = *iters
		cfg.InjectAtFrac = frac
		cfg.AdversarialTraces = 25
		cfg.AdvOpt = core.ABRTrainOptions{Iterations: 80, RolloutSteps: 1536, LR: 1e-3, Restarts: 2}
		res, err := core.TrainRobustPensieve(video, fccTrain, cfg, mathx.NewRNG(6))
		if err != nil {
			panic(err)
		}
		if res.Adversary != nil {
			fmt.Printf("  injected %d adversarial traces after %d/%d iterations\n",
				len(res.AdversarialTraces.Traces), res.Phase1Iterations, *iters)
		}
		return res.Protocol
	}

	fmt.Println("training pensieve without adversarial traces...")
	plain := train(1.0)
	fmt.Println("training pensieve with adversarial traces at 70%...")
	robust := train(0.7)

	report := func(name string, ds *trace.Dataset) {
		p, err := core.EvaluateABR(video, ds, plain, 0.08, 1)
		if err != nil {
			panic(err)
		}
		r, err := core.EvaluateABR(video, ds, robust, 0.08, 1)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-22s  plain: mean %6.3f / p5 %6.3f    robust: mean %6.3f / p5 %6.3f\n",
			name, stats.Mean(p), stats.Percentile(p, 5), stats.Mean(r), stats.Percentile(r, 5))
	}
	fmt.Println()
	report("broadband test set", fccTest)
	report("3G test set", g3Test)
	fmt.Println("\nThe paper's Figure 4: adversarial training helps most at the " +
		"5th percentile and on the broadband->3G transfer.")
}
