// Routing adversary walkthrough: the framework transposed to the third
// domain the paper motivates (§1, §2.3, §5 — routing).
//
// The adversary controls the demand matrix offered to a routing scheme on
// the Abilene backbone and is rewarded, exactly in the shape of Eq. 1, by
// the gap between the scheme's max link utilization and what congestion-
// optimal routing would achieve on the same demands. Trained against plain
// shortest-path routing (SPF), it learns demand patterns that pile onto
// SPF's single paths while leaving plenty of spare capacity an optimal
// scheme — or even ECMP — would use.
//
// Run it with:
//
//	go run ./examples/routing-adversary [-iters N]
package main

import (
	"flag"
	"fmt"

	"advnet/internal/core"
	"advnet/internal/mathx"
	"advnet/internal/routing"
)

func main() {
	iters := flag.Int("iters", 20, "adversary PPO iterations")
	flag.Parse()

	top := routing.Abilene()
	pairs := [][2]int{{0, 10}, {1, 9}, {2, 8}, {0, 5}, {4, 10}, {3, 7}}
	cfg := core.DefaultRoutingAdversaryConfig(pairs)

	fmt.Printf("topology: Abilene (%d nodes, %d directed links)\n", top.N, len(top.Edges))
	fmt.Printf("adversary controls %d commodities, rate 0-%.1f each\n\n", len(pairs), cfg.MaxRate)

	fmt.Println("training adversary against SPF...")
	opt := core.ABRTrainOptions{Iterations: *iters, RolloutSteps: 512, LR: 1e-3}
	adv, stats, err := core.TrainRoutingAdversary(top, routing.SPF{}, cfg, opt, mathx.NewRNG(7))
	if err != nil {
		panic(err)
	}
	fmt.Printf("mean MLU gap per round: %.3f -> %.3f\n\n",
		stats[0].MeanStepRew, stats[len(stats)-1].MeanStepRew)

	demands := adv.GenerateDemands(top, routing.SPF{})
	oracle := routing.NewOracle()
	var spf, ecmp, opt2 float64
	for _, d := range demands {
		spf += routing.MLU(top, routing.SPF{}.Route(top, d))
		ecmp += routing.MLU(top, routing.ECMP{}.Route(top, d))
		opt2 += routing.MLU(top, oracle.Route(top, d))
	}
	n := float64(len(demands))
	fmt.Printf("on the adversary's deterministic demand matrices (mean MLU):\n")
	fmt.Printf("  SPF (target):     %.3f\n", spf/n)
	fmt.Printf("  ECMP:             %.3f\n", ecmp/n)
	fmt.Printf("  optimal routing:  %.3f\n", opt2/n)
	fmt.Println("\nThe target is singled out: the same demands that congest SPF are\n" +
		"entirely servable — the paper's definition of a meaningful example.")
}
