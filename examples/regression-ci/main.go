// Regression-CI walkthrough: the paper's §5 "Guiding protocol development"
// workflow.
//
// A developer "fixes" BB's oscillation weakness by widening its decision
// band. This example shows how an adversarially-generated regression suite
// catches whether the fix actually helps on the conditions that exposed the
// problem — and how it would flag a change that makes things worse — instead
// of re-running a fixed set of historical traces that the new code may
// accidentally sidestep.
//
// Run it with:
//
//	go run ./examples/regression-ci
package main

import (
	"fmt"

	"advnet/internal/abr"
	"advnet/internal/core"
	"advnet/internal/mathx"
	"advnet/internal/trace"
)

func main() {
	video := abr.NewVideo(mathx.NewRNG(1), abr.DefaultVideoConfig())

	// 1. Generate the adversarial workload that exposes the weakness (the
	//    scripted pinner targets BB's buffer band; a learned adversary
	//    works identically here — see examples/quickstart).
	var traces []*trace.Trace
	for i := 0; i < 10; i++ {
		pinner := core.NewBBBufferPinner()
		pinner.BandLoS += 0.1 * float64(i) // a small family of attacks
		_, tr := core.RunScriptedABR(video, abr.NewBB(), pinner, 0.08, fmt.Sprintf("attack-%d", i))
		traces = append(traces, tr)
	}
	ds := &trace.Dataset{Name: "bb-attacks", Traces: traces}

	// 2. Record the current protocol's baseline on that workload.
	suite, err := core.NewABRRegressionSuite(video, abr.NewBB(), ds, 0.08, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("baseline BB: mean QoE %.3f, p5 %.3f on %d adversarial traces\n\n",
		suite.BaselineMeanQoE, suite.BaselineP5QoE, len(ds.Traces))

	// 3. Candidate fix A: widen the decision band (less twitchy mapping).
	fixed := &abr.BB{ReservoirS: 8, CushionS: 14}
	res, err := suite.Check(video, fixed, 0.05, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fix A (band 8-22s):  mean QoE %.3f (%+.3f)  p5 %.3f  -> pass=%v\n",
		res.MeanQoE, res.MeanDelta, res.P5QoE, res.Passed)

	// 4. Candidate fix B: a hair-trigger band at 11-12 s. It PASSES the
	//    fixed-trace suite — the recorded traces pin the *old* band, which
	//    the new code happens to sidestep...
	broken := &abr.BB{ReservoirS: 11, CushionS: 1}
	res, err = suite.Check(video, broken, 0.05, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fix B (band 11-12s): mean QoE %.3f (%+.3f)  p5 %.3f  -> pass=%v\n\n",
		res.MeanQoE, res.MeanDelta, res.P5QoE, res.Passed)

	// 5. ...which is exactly why the paper argues for re-running the
	//    adversary against the changed code instead of replaying history:
	//    an adversary aimed at fix B's band finds the same weakness again.
	rerun := core.NewBBBufferPinner()
	rerun.BandLoS, rerun.BandHiS = 11.1, 11.9
	sessionA, _ := core.RunScriptedABR(video, fixed, rerun, 0.08, "rerun-vs-A")
	sessionB, _ := core.RunScriptedABR(video, broken, rerun, 0.08, "rerun-vs-B")
	fmt.Printf("re-run adversary against fix A: mean QoE %.3f (robust)\n", sessionA.MeanQoE())
	fmt.Printf("re-run adversary against fix B: mean QoE %.3f (weakness moved, not fixed)\n", sessionB.MeanQoE())

	fmt.Println("\nFixed traces certify the past; re-run adversaries certify the code.\n" +
		"The suite is a plain JSON file (suite.Save/Load) for CI; the adversary\n" +
		"re-run is one TrainABRAdversary call against the new build.")
}
