// BBR adversary walkthrough: reproduce the §4 experiment.
//
// Runs BBR over the packet-level emulator under three regimes — benign
// constant conditions, the scripted probe attacker (the distilled exploit),
// and a learned RL adversary — and prints the utilization each achieves.
// The paper's finding: despite conditions that stay entirely within BBR's
// design range (Table 1), an adversary can hold BBR at a fraction of the
// link capacity by degrading the network exactly when BBR's infrequent
// probing phases run.
//
// Run it with:
//
//	go run ./examples/bbr-adversary [-iters N]
package main

import (
	"flag"
	"fmt"

	"advnet/internal/cc"
	"advnet/internal/core"
	"advnet/internal/mathx"
	"advnet/internal/netem"
	"advnet/internal/stats"
	"advnet/internal/trace"
)

func newBBR() netem.CongestionController { return cc.NewBBR() }

func main() {
	iters := flag.Int("iters", 60, "CC adversary PPO iterations")
	flag.Parse()

	acfg := core.DefaultCCAdversaryConfig()

	// Benign baseline: best-case constant conditions.
	benign := cc.RunTrace(cc.NewBBR(),
		trace.Constant("benign", 30, acfg.BandwidthHi, acfg.LatencyLoMs, 0),
		netem.Config{QueuePackets: acfg.QueuePackets}, mathx.NewRNG(1), acfg.IntervalS)
	fmt.Printf("benign (constant 24 Mbps / 15 ms / 0%% loss): %.0f%% utilization\n",
		100*cc.MeanUtilization(benign[len(benign)/3:]))

	// Scripted probe attacker: the hand-written distillation of the
	// weakness the RL adversary finds.
	rec := core.RunScriptedCC(newBBR, core.NewBBRProbeAttacker(), acfg, 1000, mathx.NewRNG(2))
	var u float64
	for _, r := range rec[len(rec)/3:] {
		u += r.Utilization
	}
	fmt.Printf("scripted probe attacker:                     %.0f%% utilization\n",
		100*u/float64(len(rec)-len(rec)/3))

	// Learned adversary.
	fmt.Printf("training RL adversary (%d iterations)...\n", *iters)
	opt := core.DefaultCCTrainOptions()
	opt.Iterations = *iters
	adv, _, err := core.TrainCCAdversary(newBBR, acfg, opt, mathx.NewRNG(3))
	if err != nil {
		panic(err)
	}
	learned := adv.RunEpisode(newBBR, mathx.NewRNG(4), true)
	u = 0
	var tput, capacity []float64
	for i, r := range learned {
		if i >= len(learned)/3 {
			u += r.Utilization
		}
		tput = append(tput, r.ThroughputMbps)
		capacity = append(capacity, r.Action.BandwidthMbps)
	}
	fmt.Printf("learned RL adversary:                        %.0f%% utilization\n\n",
		100*u/float64(len(learned)-len(learned)/3))

	fmt.Println(stats.ASCIIPlot(tput, 72, 6, "BBR throughput under the learned adversary (mbps)"))
	fmt.Println(stats.ASCIIPlot(capacity, 72, 6, "link capacity chosen by the adversary (mbps)"))
}
