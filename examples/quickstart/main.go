// Quickstart: find network conditions where a protocol performs far from
// optimally, in under a minute.
//
// This example trains a small RL adversary against the buffer-based (BB)
// streaming protocol, generates an adversarial bandwidth trace, and shows
// the gap between what BB achieved on that trace and what an offline-optimal
// controller would have achieved — the paper's definition of a *meaningful*
// adversarial example (bad for the protocol, good conditions objectively).
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"advnet/internal/abr"
	"advnet/internal/core"
	"advnet/internal/mathx"
)

func main() {
	rng := mathx.NewRNG(42)
	video := abr.NewVideo(rng, abr.DefaultVideoConfig())
	target := abr.NewBB()

	// 1. Train the adversary: it controls the link bandwidth (0.8-4.8
	//    Mbps, one choice per video chunk) and is rewarded by Eq. 1:
	//    r_opt - r_protocol - p_smoothing.
	fmt.Println("training adversary against BB (a few seconds)...")
	cfg := core.DefaultABRAdversaryConfig()
	opt := core.ABRTrainOptions{Iterations: 20, RolloutSteps: 1024, LR: 1e-3}
	adv, stats, err := core.TrainABRAdversary(video, target, cfg, opt, rng)
	if err != nil {
		panic(err)
	}
	fmt.Printf("adversary reward: %.1f -> %.1f\n",
		stats[0].MeanEpReward, stats[len(stats)-1].MeanEpReward)

	// 2. Generate an adversarial trace (deterministic policy).
	tr := adv.GenerateTrace(video, target, rng, false, "quickstart-adv")

	// 3. Replay it against BB and compare with the offline optimum.
	session := abr.RunSession(video, abr.NewChunkLink(tr, 0.08),
		abr.DefaultSessionConfig(), target)
	oracle := abr.NewOfflineOptimal()
	oracle.RTTSeconds = 0.08
	_, optQoE := oracle.Solve(video, tr.Bandwidths())

	fmt.Printf("\nadversarial trace (%d chunks, mean bandwidth %.2f Mbps):\n",
		len(tr.Points), tr.MeanBandwidth())
	fmt.Printf("  BB per-chunk QoE:      %7.3f\n", session.MeanQoE())
	fmt.Printf("  optimal per-chunk QoE: %7.3f\n", optQoE/float64(video.NumChunks()))
	fmt.Printf("  headroom (regret):     %7.3f  <- the adversary's objective\n",
		optQoE/float64(video.NumChunks())-session.MeanQoE())
}
