// ABR adversary walkthrough: reproduce the §3 experiment end to end.
//
// Trains an adversary against MPC, generates a set of adversarial traces,
// and evaluates MPC, a Pensieve-style RL agent, and buffer-based (BB) on
// them — showing that the adversary singles out its target (the Figure 1a
// shape) rather than making the network hostile for everyone.
//
// Run it with:
//
//	go run ./examples/abr-adversary [-traces N] [-iters N]
package main

import (
	"flag"
	"fmt"

	"advnet/internal/abr"
	"advnet/internal/core"
	"advnet/internal/mathx"
	"advnet/internal/stats"
	"advnet/internal/trace"
)

func main() {
	nTraces := flag.Int("traces", 30, "adversarial traces to generate")
	iters := flag.Int("iters", 40, "adversary PPO iterations")
	flag.Parse()

	rng := mathx.NewRNG(7)
	video := abr.NewVideo(rng, abr.DefaultVideoConfig())

	// Train a Pensieve-style agent to compare against (the paper uses the
	// authors' pre-trained model; we train our own on random traces over
	// the same 0.8-4.8 Mbps conditions).
	fmt.Println("training pensieve (background protocol)...")
	rcfg := trace.RandomConfig{Points: 48, Duration: 4, BandwidthLo: 0.8, BandwidthHi: 4.8, LatencyLo: 40}
	ds := trace.GenerateRandomDataset(rng, rcfg, 40, "rand")
	pensieve, _, err := abr.TrainPensieve(video, ds, 40, rng.Split())
	if err != nil {
		panic(err)
	}

	mpc := abr.NewMPC()
	bb := abr.NewBB()

	fmt.Println("training adversary against MPC...")
	acfg := core.DefaultABRAdversaryConfig()
	opt := core.ABRTrainOptions{Iterations: *iters, RolloutSteps: 1536, LR: 1e-3}
	adv, _, err := core.TrainABRAdversary(video, mpc, acfg, opt, mathx.NewRNG(9))
	if err != nil {
		panic(err)
	}

	fmt.Printf("generating %d adversarial traces...\n\n", *nTraces)
	advTraces := adv.GenerateTraces(video, mpc, mathx.NewRNG(10), *nTraces, "adv-mpc")

	report := func(label string, d *trace.Dataset) {
		fmt.Printf("%s:\n", label)
		for _, p := range []abr.Protocol{pensieve, mpc, bb} {
			q, err := core.EvaluateABRChunked(video, d, p, 0.08, 1)
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %-9s mean QoE %6.3f   p5 %6.3f\n",
				p.Name(), stats.Mean(q), stats.Percentile(q, 5))
		}
	}
	report("QoE on traces targeting MPC", advTraces)
	random := trace.GenerateRandomDataset(mathx.NewRNG(11), rcfg, *nTraces, "random")
	report("\nQoE on random traces (baseline)", random)

	fmt.Println("\nNote how MPC drops below the others only on its own " +
		"adversarial traces: the adversary found targeted, non-trivial weaknesses.")
}
