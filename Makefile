GO ?= go

# Where bench-diff / bench-baseline write their short-mode reports. The
# committed baselines live in bench/baselines/; fresh runs go to a scratch
# directory so the working tree stays clean.
BENCH_BASELINE_DIR ?= bench/baselines
BENCH_FRESH_DIR ?= /tmp/advnet-bench

.PHONY: all build test vet race bench swarm-bench serve-race faults verify bench-short bench-diff bench-baseline

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrent code lives in the rollout worker pool (internal/rl/vec.go)
# and the evaluation fan-outs (internal/rl/evaluate.go, the EvaluateABR*
# helpers in internal/core); the race detector over the full test suite —
# which includes the W>1 golden tests — is the check that keeps them honest.
race:
	$(GO) test -race ./...

# Micro-benchmarks for the NN hot path (must report 0 allocs/op), the
# batched minibatch kernels (row loops vs blocked GEMM), the parallel PPO
# iteration (W=1 vs W=4), the parallel dataset evaluation (W=1 vs W=4), and
# the indexed trace-link download (prefix-sum vs historical linear rescan).
# Results are recorded in EXPERIMENTS.md.
bench:
	$(GO) test -run 'xxx' -bench 'BenchmarkMLPForward|BenchmarkMLPBackward|BenchmarkForwardBatch|BenchmarkPPOTrainIteration|BenchmarkEvaluateABR|BenchmarkServeStorm' -benchmem .
	$(GO) test -run 'xxx' -bench 'BenchmarkTraceLinkDownload' -benchmem ./internal/abr/
	$(GO) run ./cmd/serve -n 200000 -batch 32 -storm 128 -json BENCH_serve.json
	$(MAKE) swarm-bench

# Swarm-scale simulation benchmark: per-event cost of the fluid scheduler
# (must report 0 allocs/op in steady state) and the 100k-concurrent-session
# run on one machine, reported machine-readably in BENCH_swarm.json.
swarm-bench:
	$(GO) test -run 'xxx' -bench 'BenchmarkSwarmGroupEvent' -benchmem ./internal/swarm/
	$(GO) run ./cmd/swarm -clients 100000 -groups 1024 -capacity 40 -protocol bb,rate,bola -json BENCH_swarm.json

# Serving-engine concurrency suite under the race detector: hot-reload
# consistency (snapshot swaps mid-storm, every response consistent with
# exactly one snapshot), the concurrent request storm, close semantics, and
# the degradation path (overload shedding, deadline aborts, shard-panic
# containment) with its abr fallback layer.
serve-race:
	$(GO) test -race -count=1 ./internal/serve/
	$(GO) test -race -count=1 -run 'PensieveServe' ./internal/abr/

# Crash-safety, fault-injection, and determinism suite (DESIGN.md §8.2/§8.3/
# §8.5/§8.7) under the race detector: bitwise checkpoint resume (rl trainers,
# abr env state, the robust pipeline, shard cursors), worker-panic containment
# (rollout workers, swarm groups, and serving shards), the divergence
# watchdog, shard determinism, zero-bandwidth download guards, the
# atomic-write crash simulation, the netem cross-run determinism suite, the
# swarm worker-count-invariance suite, the serving degradation contract
# (overload shedding, deadline bounds, close-during-storm, reload retry and
# circuit breaker, fallback decision identity) driven through the
# serve.enqueue / serve.flush / serve.reload chaos points, and the
# multi-process training suite (worker kill -9 lane reassignment, coordinator
# kill-and-resume, golden-fingerprint equivalence, checkpoint-directory
# ownership) driven through the dist.accept / dist.assign / dist.recv chaos
# points.
faults:
	$(GO) test -race -run 'Resume|Checkpoint|Panic|Divergence|Crash|WriteFileAtomic|EnvState|SessionState|Shard|Cursor|ZeroBandwidth|NonPositiveBandwidth|Determinism|SameSeed|Swarm|Overload|Deadline|Breaker|Reload|Fallback|Close|Fault|Dist' ./internal/rl/ ./internal/core/ ./internal/abr/ ./internal/fsx/ ./internal/trace/ ./internal/netem/ ./internal/swarm/ ./internal/serve/ ./internal/dist/

# Short-mode benchmark suite behind the regression gate: the same producers
# as the full `make bench` (serving storm, swarm simulation, adversary
# training, dataset evaluation) plus the multi-process training path, sized
# to finish in about a minute so CI can afford to rerun them on every push.
# Each writes a unified-schema BENCH_<area>.json (DESIGN.md §8.6) into the
# directory given as $(1).
define bench_short
	mkdir -p $(1)
	$(GO) run ./cmd/serve -n 60000 -batch 32 -storm 64 -json $(1)/BENCH_serve.json
	$(GO) run ./cmd/swarm -clients 4000 -groups 64 -capacity 40 -protocol bb,rate,bola -json $(1)/BENCH_swarm.json
	$(GO) run ./cmd/advtrain -domain abr -target bb -iters 6 -o $(1)/adversary.json -bench-json $(1)/BENCH_train.json
	$(GO) run ./cmd/abreval -generate 24 -protocols bb,rate,bola -bench-json $(1)/BENCH_eval.json
	$(GO) run ./cmd/disttrain -coordinator -lanes 4 -workers 2 -iters 6 -traces 16 -rollout-steps 256 -json $(1)/BENCH_dist.json
endef

bench-short:
	$(call bench_short,$(BENCH_FRESH_DIR))

# Regression gate: rerun the short-mode suite and judge it against the
# committed baselines. Exits non-zero when any regression-gated metric moved
# beyond its tolerance in the bad direction (or a report failed to produce).
bench-diff: bench-short
	$(GO) run ./cmd/benchdiff -baseline-dir $(BENCH_BASELINE_DIR) -fresh-dir $(BENCH_FRESH_DIR)

# Re-baseline after an intentional performance change: rerun the short-mode
# suite straight into bench/baselines/ and commit the result.
bench-baseline:
	$(call bench_short,$(BENCH_BASELINE_DIR))
	@rm -f $(BENCH_BASELINE_DIR)/adversary.json

# Tier-1 verification: build + tests, plus vet and the race detector.
verify: build vet test race
