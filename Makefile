GO ?= go

.PHONY: all build test vet race bench swarm-bench serve-race faults verify

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrent code lives in the rollout worker pool (internal/rl/vec.go)
# and the evaluation fan-outs (internal/rl/evaluate.go, the EvaluateABR*
# helpers in internal/core); the race detector over the full test suite —
# which includes the W>1 golden tests — is the check that keeps them honest.
race:
	$(GO) test -race ./...

# Micro-benchmarks for the NN hot path (must report 0 allocs/op), the
# batched minibatch kernels (row loops vs blocked GEMM), the parallel PPO
# iteration (W=1 vs W=4), the parallel dataset evaluation (W=1 vs W=4), and
# the indexed trace-link download (prefix-sum vs historical linear rescan).
# Results are recorded in EXPERIMENTS.md.
bench:
	$(GO) test -run 'xxx' -bench 'BenchmarkMLPForward|BenchmarkMLPBackward|BenchmarkForwardBatch|BenchmarkPPOTrainIteration|BenchmarkEvaluateABR|BenchmarkServeStorm' -benchmem .
	$(GO) test -run 'xxx' -bench 'BenchmarkTraceLinkDownload' -benchmem ./internal/abr/
	$(GO) run ./cmd/serve -n 200000 -batch 32 -storm 128 -json BENCH_serve.json
	$(MAKE) swarm-bench

# Swarm-scale simulation benchmark: per-event cost of the fluid scheduler
# (must report 0 allocs/op in steady state) and the 100k-concurrent-session
# run on one machine, reported machine-readably in BENCH_swarm.json.
swarm-bench:
	$(GO) test -run 'xxx' -bench 'BenchmarkSwarmGroupEvent' -benchmem ./internal/swarm/
	$(GO) run ./cmd/swarm -clients 100000 -groups 1024 -capacity 40 -protocol bb,rate,bola -json BENCH_swarm.json

# Serving-engine concurrency suite under the race detector: hot-reload
# consistency (snapshot swaps mid-storm, every response consistent with
# exactly one snapshot), the concurrent request storm, and close semantics.
serve-race:
	$(GO) test -race -count=1 ./internal/serve/

# Crash-safety, fault-injection, and determinism suite (DESIGN.md §8.2/§8.3/
# §8.5) under the race detector: bitwise checkpoint resume (rl trainers, abr
# env state, the robust pipeline, shard cursors), worker-panic containment
# (rollout workers and swarm groups), the divergence watchdog, shard
# determinism, zero-bandwidth download guards, the atomic-write crash
# simulation, the netem cross-run determinism suite, and the swarm
# worker-count-invariance suite.
faults:
	$(GO) test -race -run 'Resume|Checkpoint|Panic|Divergence|Crash|WriteFileAtomic|EnvState|SessionState|Shard|Cursor|ZeroBandwidth|NonPositiveBandwidth|Determinism|SameSeed|Swarm' ./internal/rl/ ./internal/core/ ./internal/abr/ ./internal/fsx/ ./internal/trace/ ./internal/netem/ ./internal/swarm/

# Tier-1 verification: build + tests, plus vet and the race detector.
verify: build vet test race
