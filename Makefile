GO ?= go

.PHONY: all build test vet race bench verify

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The worker pool (internal/rl/vec.go) is the only concurrent code in the
# repository; the race detector over the full test suite is the check that
# keeps it that way.
race:
	$(GO) test -race ./...

# Micro-benchmarks for the NN hot path (must report 0 allocs/op) and the
# parallel PPO iteration (W=1 vs W=4). Results are recorded in EXPERIMENTS.md.
bench:
	$(GO) test -run 'xxx' -bench 'BenchmarkMLPForward|BenchmarkMLPBackward|BenchmarkPPOTrainIteration' -benchmem .

# Tier-1 verification: build + tests, plus vet and the race detector.
verify: build vet test race
