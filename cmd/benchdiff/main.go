// Command benchdiff compares fresh benchmark telemetry against a committed
// baseline and fails when a regression-gated metric moved beyond its
// tolerance in the bad direction. Both sides are BENCH_<area>.json documents
// in the unified schema (DESIGN.md §8.6); the baseline carries the rules
// (direction, tolerance), so adding a gate is a baseline edit, not a code
// change.
//
// Usage:
//
//	benchdiff -baseline bench/baselines/BENCH_serve.json -fresh /tmp/BENCH_serve.json
//	benchdiff -baseline-dir bench/baselines -fresh-dir /tmp/bench
//
// Directory mode pairs every BENCH_*.json in the baseline directory with the
// same filename in the fresh directory; a missing fresh file is a failure
// (the bench that produced it regressed into not running at all). Exit
// status: 0 all areas within tolerance, 1 any regression, missing metric, or
// schema mismatch, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"advnet/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stdout)
	baseline := fs.String("baseline", "", "baseline BENCH_<area>.json")
	fresh := fs.String("fresh", "", "fresh BENCH_<area>.json to judge against -baseline")
	baselineDir := fs.String("baseline-dir", "", "directory of committed baselines (pairs every BENCH_*.json with -fresh-dir)")
	freshDir := fs.String("fresh-dir", "", "directory of freshly produced reports")
	tol := fs.Float64("tol", metrics.DefaultTolerance, "relative tolerance for metrics whose baseline rule does not set one")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	type pair struct{ base, fresh string }
	var pairs []pair
	switch {
	case *baseline != "" && *fresh != "":
		pairs = []pair{{*baseline, *fresh}}
	case *baselineDir != "" && *freshDir != "":
		matches, err := filepath.Glob(filepath.Join(*baselineDir, "BENCH_*.json"))
		if err != nil || len(matches) == 0 {
			fmt.Fprintf(stdout, "benchdiff: no BENCH_*.json baselines in %s\n", *baselineDir)
			return 2
		}
		sort.Strings(matches)
		for _, m := range matches {
			pairs = append(pairs, pair{m, filepath.Join(*freshDir, filepath.Base(m))})
		}
	default:
		fmt.Fprintln(stdout, "benchdiff: need -baseline FILE -fresh FILE, or -baseline-dir DIR -fresh-dir DIR")
		fs.Usage()
		return 2
	}

	failed := false
	for _, p := range pairs {
		base, err := metrics.ReadReport(p.base)
		if err != nil {
			fmt.Fprintf(stdout, "benchdiff: %v\n", err)
			return 2
		}
		fr, err := metrics.ReadReport(p.fresh)
		if err != nil {
			fmt.Fprintf(stdout, "benchdiff: %s: missing or unreadable fresh report (%v) — FAIL\n", p.fresh, err)
			failed = true
			continue
		}
		d, err := metrics.Compare(base, fr, *tol)
		if err != nil {
			fmt.Fprintf(stdout, "benchdiff: %s vs %s: %v — FAIL\n", p.base, p.fresh, err)
			failed = true
			continue
		}
		fmt.Fprintf(stdout, "== %s (%s vs %s)\n", d.Area, p.base, p.fresh)
		fmt.Fprint(stdout, d.Table())
		if n := d.Regressions(); n > 0 {
			fmt.Fprintf(stdout, "%d regression(s) in area %s\n", n, d.Area)
			failed = true
		}
		fmt.Fprintln(stdout)
	}
	if failed {
		fmt.Fprintln(stdout, "benchdiff: FAIL")
		return 1
	}
	fmt.Fprintln(stdout, "benchdiff: OK")
	return 0
}
