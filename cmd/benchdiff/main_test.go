package main

import (
	"path/filepath"
	"strings"
	"testing"

	"advnet/internal/metrics"
)

// writeReport produces a serve-shaped BENCH report with the given headline
// throughput and p99-ish latency distribution scale.
func writeReport(t *testing.T, path string, rps float64) {
	t.Helper()
	reg := metrics.NewRegistry("serve")
	reg.SetConfig("storm", 64)
	reg.SetMetric("throughput_rps", rps, metrics.HigherIsBetter("req/s"))
	reg.SetMetric("wall_seconds", 1.5, metrics.Info("s"))
	if err := reg.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
}

func TestRunOKWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base, fresh := filepath.Join(dir, "base.json"), filepath.Join(dir, "fresh.json")
	writeReport(t, base, 100_000)
	writeReport(t, fresh, 95_000) // -5%, inside the default 50% tolerance
	var out strings.Builder
	if code := run([]string{"-baseline", base, "-fresh", fresh}, &out); code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "benchdiff: OK") {
		t.Fatalf("missing OK line:\n%s", out.String())
	}
}

// TestRunInjectedRegressionExitsNonZero is the acceptance check for the
// bench-diff gate: a throughput collapse beyond tolerance must flip the exit
// status, because that exit status is what fails the CI job.
func TestRunInjectedRegressionExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	base, fresh := filepath.Join(dir, "base.json"), filepath.Join(dir, "fresh.json")
	writeReport(t, base, 100_000)
	writeReport(t, fresh, 30_000) // -70% throughput: a regression
	var out strings.Builder
	code := run([]string{"-baseline", base, "-fresh", fresh}, &out)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), "benchdiff: FAIL") {
		t.Fatalf("missing regression report:\n%s", out.String())
	}
}

func TestRunDirModePairsBaselines(t *testing.T) {
	baseDir, freshDir := t.TempDir(), t.TempDir()
	writeReport(t, filepath.Join(baseDir, "BENCH_serve.json"), 100_000)
	writeReport(t, filepath.Join(freshDir, "BENCH_serve.json"), 110_000)
	var out strings.Builder
	if code := run([]string{"-baseline-dir", baseDir, "-fresh-dir", freshDir}, &out); code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out.String())
	}
}

func TestRunDirModeMissingFreshFails(t *testing.T) {
	baseDir, freshDir := t.TempDir(), t.TempDir()
	writeReport(t, filepath.Join(baseDir, "BENCH_serve.json"), 100_000)
	var out strings.Builder
	if code := run([]string{"-baseline-dir", baseDir, "-fresh-dir", freshDir}, &out); code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out strings.Builder
	if code := run(nil, &out); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"-baseline-dir", t.TempDir(), "-fresh-dir", t.TempDir()}, &out); code != 2 {
		t.Fatalf("empty baseline dir: exit %d, want 2", code)
	}
}
