// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-full] [-seed N] [table1|fig1|fig2|fig3|fig4|fig5|fig6|ablations|routing|all]
//
// By default it runs with the reduced Fast budgets (a few minutes for
// everything); -full uses budgets comparable to the paper's (600k adversary
// steps, 200 evaluation traces) and takes correspondingly longer.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"advnet/internal/experiments"
)

func main() {
	log.SetFlags(0)
	full := flag.Bool("full", false, "use paper-scale budgets")
	seed := flag.Uint64("seed", 1, "experiment seed")
	workers := flag.Int("workers", 1, "parallel workers for training rollouts and evaluation sweeps (evaluation results are identical for any value)")
	flag.Parse()

	cfg := experiments.Fast()
	if *full {
		cfg = experiments.Full()
	}
	cfg.Seed = *seed
	cfg.Workers = *workers

	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}

	run := func(name string, fn func() (fmt.Stringer, error)) {
		if which != "all" && which != name {
			return
		}
		start := time.Now()
		res, err := fn()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(res)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Second))
	}

	switch which {
	case "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "ablations", "routing", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", which)
		flag.Usage()
		os.Exit(2)
	}

	run("table1", func() (fmt.Stringer, error) {
		return experiments.Table1(cfg), nil
	})

	// Figures 1 and 2 share the trained protocols and adversaries.
	if which == "all" || which == "fig1" || which == "fig2" {
		start := time.Now()
		res, err := experiments.Figure1And2(cfg)
		if err != nil {
			log.Fatalf("fig1/fig2: %v", err)
		}
		fmt.Println(res)
		fmt.Printf("[fig1+fig2 completed in %v]\n\n", time.Since(start).Round(time.Second))
	}

	run("fig3", func() (fmt.Stringer, error) {
		return experiments.Figure3(cfg), nil
	})
	run("fig4", func() (fmt.Stringer, error) {
		return experiments.Figure4(cfg)
	})

	// Figures 5 and 6 share the trained CC adversary.
	if which == "all" || which == "fig5" || which == "fig6" {
		start := time.Now()
		res, err := experiments.Figure5And6(cfg)
		if err != nil {
			log.Fatalf("fig5/fig6: %v", err)
		}
		fmt.Println(res)
		fmt.Printf("[fig5+fig6 completed in %v]\n\n", time.Since(start).Round(time.Second))
	}

	if which == "all" || which == "ablations" {
		start := time.Now()
		sm, err := experiments.AblationSmoothing(cfg)
		if err != nil {
			log.Fatalf("ablations: %v", err)
		}
		fmt.Println(sm)
		ob, err := experiments.AblationOptBaseline(cfg)
		if err != nil {
			log.Fatalf("ablations: %v", err)
		}
		fmt.Println(ob)
		fmt.Println(experiments.AblationReplayFidelity(cfg))
		ot, err := experiments.AblationOnlineVsTraceBased(cfg)
		if err != nil {
			log.Fatalf("ablations: %v", err)
		}
		fmt.Println(ot)
		ns, err := experiments.AblationNetSize(cfg)
		if err != nil {
			log.Fatalf("ablations: %v", err)
		}
		fmt.Println(ns)
		fmt.Printf("[ablations completed in %v]\n\n", time.Since(start).Round(time.Second))
	}

	run("routing", func() (fmt.Stringer, error) {
		return experiments.ExtensionRouting(cfg)
	})
}
