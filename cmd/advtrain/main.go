// Command advtrain trains an RL adversary against a protocol and writes the
// trained policy (and optionally a dataset of adversarial traces) to disk.
//
// Usage:
//
//	advtrain -domain abr -target bb|mpc|rate|bola -o adversary.json [-traces-out traces.json -n 50]
//	advtrain -domain abr -target pensieve -pretrain-iters 20 -workers 4 -o adversary.json
//	advtrain -domain cc  -target bbr|cubic|reno -o adversary.json
//
// The pensieve target is trained from scratch on a synthetic FCC-like corpus
// before the adversary attacks it; with -workers > 1 that pretraining streams
// the corpus sharded across workers unless -no-shard restores the legacy
// full-dataset sampling. The adversary environments themselves are
// dataset-free (the adversary emits the bandwidths), so -shard affects only
// the pensieve pretraining.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"advnet/internal/abr"
	"advnet/internal/cc"
	"advnet/internal/core"
	"advnet/internal/mathx"
	"advnet/internal/metrics"
	"advnet/internal/netem"
	"advnet/internal/rl"
	"advnet/internal/trace"
)

func main() {
	log.SetFlags(0)
	domain := flag.String("domain", "abr", "abr or cc")
	target := flag.String("target", "bb", "abr: bb|mpc|rate|bola|pensieve; cc: bbr|cubic|reno|copa|vivace|htcp")
	out := flag.String("o", "adversary.json", "output path for the trained adversary")
	tracesOut := flag.String("traces-out", "", "also generate adversarial traces to this path (abr only)")
	n := flag.Int("n", 50, "number of traces to generate with -traces-out")
	iters := flag.Int("iters", 0, "PPO iterations (0 = domain default)")
	seed := flag.Uint64("seed", 1, "training seed")
	workers := flag.Int("workers", 1, "parallel rollout workers (1 = historical single-threaded path)")
	shard := flag.Bool("shard", true, "with -target pensieve and -workers > 1, shard the pretraining corpus round-robin across workers")
	noShard := flag.Bool("no-shard", false, "force legacy full-dataset sampling during pensieve pretraining (overrides -shard)")
	pretrainIters := flag.Int("pretrain-iters", 20, "PPO iterations for pretraining the pensieve target")
	gemm := flag.Bool("gemm", false, "blocked GEMM minibatch updates (faster; matches the default path to rounding, not bitwise)")
	ckptDir := flag.String("checkpoint-dir", "", "directory for periodic crash-safe training checkpoints (empty = disabled)")
	ckptEvery := flag.Int("checkpoint-every", 1, "save a checkpoint every N training iterations")
	resume := flag.Bool("resume", false, "continue from the checkpoints in -checkpoint-dir (required when it is not empty)")
	benchJSON := flag.String("bench-json", "", "write a BENCH_train.json telemetry report here (unified schema, DESIGN.md §8.6)")
	flag.Parse()

	ckpt, err := core.ResolveCheckpoint(*ckptDir, *ckptEvery, *resume)
	if err != nil {
		log.Fatal(err)
	}

	// Telemetry is opt-in: with no -bench-json the trainers run with a nil
	// metrics hook, the historical zero-overhead path.
	var reg *metrics.Registry
	var tm *rl.TrainMetrics
	if *benchJSON != "" {
		reg = metrics.NewRegistry("train")
		tm = rl.NewTrainMetrics(reg)
		reg.SetConfig("domain", *domain)
		reg.SetConfig("target", *target)
		reg.SetConfig("seed", *seed)
		reg.SetConfig("workers", *workers)
		reg.SetConfig("gemm", *gemm)
	}

	rng := mathx.NewRNG(*seed)
	switch *domain {
	case "abr":
		video := abr.NewVideo(mathx.NewRNG(1), abr.DefaultVideoConfig())
		var proto abr.Protocol
		switch *target {
		case "bb":
			proto = abr.NewBB()
		case "mpc":
			proto = abr.NewMPC()
		case "rate":
			proto = abr.NewRateBased()
		case "bola":
			proto = abr.NewBOLA()
		case "pensieve":
			corpus := trace.GenerateFCCLikeDataset(rng.Split(), trace.DefaultFCCLike(), 40, "fcc")
			mode := "full-dataset"
			train := abr.TrainPensieveParallel
			if *shard && !*noShard && *workers > 1 {
				mode = "sharded"
				train = abr.TrainPensieveSharded
			}
			log.Printf("pretraining pensieve target on %d traces (%s sampling, %d workers, %d iterations)...",
				len(corpus.Traces), mode, *workers, *pretrainIters)
			agent, _, err := train(video, corpus, *pretrainIters, *workers, rng.Split())
			if err != nil {
				log.Fatal(err)
			}
			proto = agent
		default:
			log.Fatalf("unknown abr target %q", *target)
		}
		opt := core.DefaultABRTrainOptions()
		if *iters > 0 {
			opt.Iterations = *iters
		}
		opt.Workers = *workers
		opt.GEMM = *gemm
		opt.Checkpoint = ckpt
		opt.Metrics = tm
		log.Printf("training ABR adversary against %s for %d iterations (%d workers)...", proto.Name(), opt.Iterations, *workers)
		t0 := time.Now()
		adv, stats, err := core.TrainABRAdversary(video, proto, core.DefaultABRAdversaryConfig(), opt, rng)
		if err != nil {
			log.Fatal(err)
		}
		writeTrainReport(reg, *benchJSON, stats, time.Since(t0), "ep_reward", func(s rl.IterStats) float64 { return s.MeanEpReward })
		log.Printf("episode reward: %.1f -> %.1f", stats[0].MeanEpReward, stats[len(stats)-1].MeanEpReward)
		if err := adv.Save(*out); err != nil {
			log.Fatal(err)
		}
		log.Printf("adversary written to %s", *out)
		if *tracesOut != "" {
			d := adv.GenerateTraces(video, proto, rng.Split(), *n, "adv-"+proto.Name())
			if err := d.SaveJSON(*tracesOut); err != nil {
				log.Fatal(err)
			}
			log.Printf("%d traces written to %s", *n, *tracesOut)
		}

	case "cc":
		var newCC func() netem.CongestionController
		switch *target {
		case "bbr":
			newCC = func() netem.CongestionController { return cc.NewBBR() }
		case "cubic":
			newCC = func() netem.CongestionController { return cc.NewCubic() }
		case "reno":
			newCC = func() netem.CongestionController { return cc.NewReno() }
		case "copa":
			newCC = func() netem.CongestionController { return cc.NewCopa() }
		case "vivace":
			newCC = func() netem.CongestionController { return cc.NewVivace() }
		case "htcp":
			newCC = func() netem.CongestionController { return cc.NewHTCP() }
		default:
			log.Fatalf("unknown cc target %q", *target)
		}
		opt := core.DefaultCCTrainOptions()
		if *iters > 0 {
			opt.Iterations = *iters
		}
		opt.Workers = *workers
		opt.GEMM = *gemm
		opt.Checkpoint = ckpt
		opt.Metrics = tm
		log.Printf("training CC adversary against %s for %d iterations (%d workers)...", *target, opt.Iterations, *workers)
		t0 := time.Now()
		adv, stats, err := core.TrainCCAdversary(newCC, core.DefaultCCAdversaryConfig(), opt, rng)
		if err != nil {
			log.Fatal(err)
		}
		writeTrainReport(reg, *benchJSON, stats, time.Since(t0), "step_reward", func(s rl.IterStats) float64 { return s.MeanStepRew })
		log.Printf("step reward: %.3f -> %.3f", stats[0].MeanStepRew, stats[len(stats)-1].MeanStepRew)
		if err := adv.Save(*out); err != nil {
			log.Fatal(err)
		}
		log.Printf("adversary written to %s", *out)

	default:
		fmt.Fprintf(os.Stderr, "unknown domain %q\n", *domain)
		flag.Usage()
		os.Exit(2)
	}
}

// writeTrainReport finishes the BENCH_train.json report: run-level scalars
// (iters/s is the regression-gated headline; rollout_s/update_s timers and
// the iteration counter were observed live by the trainer), the learning
// trajectory as a reward series indexed by iteration, and the final reward.
// A nil reg (no -bench-json) is a no-op.
func writeTrainReport(reg *metrics.Registry, path string, stats []rl.IterStats, wall time.Duration, rewardName string, reward func(rl.IterStats) float64) {
	if reg == nil {
		return
	}
	reg.SetConfig("iterations", len(stats))
	reg.SetMetric("wall_seconds", wall.Seconds(), metrics.Info("s"))
	if wall > 0 {
		reg.SetMetric("iters_per_sec", float64(len(stats))/wall.Seconds(), metrics.HigherIsBetter("iters/s"))
	}
	if len(stats) > 0 {
		reg.SetMetric("final_"+rewardName, reward(stats[len(stats)-1]), metrics.Info("reward"))
		ser := reg.Series(rewardName, 1, metrics.Info("reward"))
		for _, s := range stats {
			ser.Append(float64(s.Iteration), reward(s))
		}
	}
	if err := reg.WriteJSON(path); err != nil {
		log.Fatal(err)
	}
	log.Printf("telemetry written to %s", path)
}
