// Command robustify runs the §2.3 pipeline end to end: train a Pensieve-style
// agent on a dataset, train an adversary against it, inject the adversarial
// traces, finish training, and write the resulting policy (and the
// adversarial traces) to disk.
//
// Usage:
//
//	robustify -traces train.json -o pensieve.json [-inject 0.9] [-iters 60]
//	robustify -generate fcc -o pensieve.json       # synthesize the dataset
package main

import (
	"flag"
	"log"

	"advnet/internal/abr"
	"advnet/internal/core"
	"advnet/internal/mathx"
	"advnet/internal/trace"
)

func main() {
	log.SetFlags(0)
	tracesPath := flag.String("traces", "", "JSON training dataset")
	generate := flag.String("generate", "", "synthesize the dataset instead: fcc or 3g")
	out := flag.String("o", "pensieve.json", "output path for the trained policy network")
	advOut := flag.String("adv-traces-out", "", "also write the generated adversarial traces here")
	inject := flag.Float64("inject", 0.9, "fraction of training after which to inject (>=1 disables)")
	iters := flag.Int("iters", 60, "total protocol PPO iterations")
	advIters := flag.Int("adv-iters", 80, "adversary PPO iterations")
	nTraces := flag.Int("n", 25, "adversarial traces to inject")
	seed := flag.Uint64("seed", 1, "training seed")
	workers := flag.Int("workers", 1, "parallel rollout workers for both the protocol and the adversary (1 = single-threaded)")
	shard := flag.Bool("shard", true, "with -workers > 1, partition the training dataset round-robin across workers; each worker streams its shard in deterministic epoch-reshuffled order covering the dataset once per epoch")
	noShard := flag.Bool("no-shard", false, "force the legacy full-dataset uniform sampling in every worker (overrides -shard)")
	gemm := flag.Bool("gemm", false, "blocked GEMM minibatch updates for both PPO runs (faster; matches the default path to rounding, not bitwise)")
	ckptDir := flag.String("checkpoint-dir", "", "directory for periodic crash-safe training checkpoints (empty = disabled)")
	ckptEvery := flag.Int("checkpoint-every", 1, "save a checkpoint every N protocol-training iterations")
	resume := flag.Bool("resume", false, "continue from the checkpoints in -checkpoint-dir (required when it is not empty)")
	flag.Parse()

	ckpt, err := core.ResolveCheckpoint(*ckptDir, *ckptEvery, *resume)
	if err != nil {
		log.Fatal(err)
	}

	var ds *trace.Dataset
	rng := mathx.NewRNG(*seed)
	switch {
	case *tracesPath != "":
		ds, err = trace.LoadJSON(*tracesPath)
		if err != nil {
			log.Fatal(err)
		}
	case *generate == "fcc":
		ds = trace.GenerateFCCLikeDataset(rng, trace.DefaultFCCLike(), 40, "fcc")
	case *generate == "3g":
		ds = trace.GenerateThreeGLikeDataset(rng, trace.DefaultThreeGLike(), 40, "3g")
	default:
		log.Fatal("need -traces FILE or -generate fcc|3g")
	}

	video := abr.NewVideo(mathx.NewRNG(1), abr.DefaultVideoConfig())
	cfg := core.DefaultRobustTrainConfig()
	cfg.TotalIterations = *iters
	cfg.InjectAtFrac = *inject
	cfg.AdversarialTraces = *nTraces
	cfg.AdvOpt = core.ABRTrainOptions{Iterations: *advIters, RolloutSteps: 1536, LR: 1e-3, Workers: *workers, GEMM: *gemm}
	cfg.Workers = *workers
	cfg.ShardTraces = *shard && !*noShard
	cfg.GEMM = *gemm
	cfg.Checkpoint = ckpt

	mode := "sharded"
	if !cfg.ShardTraces || *workers <= 1 {
		mode = "full-dataset"
	}
	log.Printf("training on %q (%d traces, %s sampling), injecting at %.0f%%, %d workers...", ds.Name, len(ds.Traces), mode, 100**inject, *workers)
	res, err := core.TrainRobustPensieve(video, ds, cfg, rng.Split())
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("phase 1: %d iterations, phase 2: %d iterations", res.Phase1Iterations, res.Phase2Iterations)

	if err := res.Protocol.Policy.Net().Save(*out); err != nil {
		log.Fatal(err)
	}
	log.Printf("policy written to %s", *out)
	if *advOut != "" && res.AdversarialTraces != nil {
		if err := res.AdversarialTraces.SaveJSON(*advOut); err != nil {
			log.Fatal(err)
		}
		log.Printf("%d adversarial traces written to %s", len(res.AdversarialTraces.Traces), *advOut)
	}

	// Quick self-evaluation on the training distribution.
	q, err := core.EvaluateABR(video, ds, res.Protocol, 0.08, *workers)
	if err != nil {
		log.Fatal(err)
	}
	var mean float64
	for _, v := range q {
		mean += v
	}
	log.Printf("mean QoE on the training dataset: %.3f", mean/float64(len(q)))
}
