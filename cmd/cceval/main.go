// Command cceval runs a congestion-control protocol over the packet-level
// emulator, either on a trace file, on constant conditions, or against a
// saved adversary, and prints the utilization summary and time series.
//
// Usage:
//
//	cceval -protocol bbr|cubic|reno -traces trace.json          # replay a trace
//	cceval -protocol bbr -bw 12 -lat 20 -loss 0.02 -dur 30      # constant link
//	cceval -protocol bbr -adversary adv.json                    # online adversary
package main

import (
	"flag"
	"fmt"
	"log"

	"advnet/internal/cc"
	"advnet/internal/core"
	"advnet/internal/mathx"
	"advnet/internal/netem"
	"advnet/internal/stats"
	"advnet/internal/trace"
)

func main() {
	log.SetFlags(0)
	protocol := flag.String("protocol", "bbr", "bbr, cubic, reno, copa, vivace or htcp")
	tracesPath := flag.String("traces", "", "JSON trace dataset to replay (first trace)")
	advPath := flag.String("adversary", "", "run online against this saved CC adversary")
	bw := flag.Float64("bw", 12, "constant bandwidth Mbps")
	lat := flag.Float64("lat", 20, "constant one-way latency ms")
	loss := flag.Float64("loss", 0, "constant loss rate")
	dur := flag.Float64("dur", 30, "duration seconds for constant conditions")
	seed := flag.Uint64("seed", 1, "emulator seed")
	plot := flag.Bool("plot", true, "print ASCII throughput plot")
	flag.Parse()

	newCC := func() netem.CongestionController {
		switch *protocol {
		case "bbr":
			return cc.NewBBR()
		case "cubic":
			return cc.NewCubic()
		case "reno":
			return cc.NewReno()
		case "copa":
			return cc.NewCopa()
		case "vivace":
			return cc.NewVivace()
		case "htcp":
			return cc.NewHTCP()
		}
		log.Fatalf("unknown protocol %q", *protocol)
		return nil
	}

	var samples []cc.Sample
	switch {
	case *advPath != "":
		adv, err := core.LoadCCAdversary(*advPath)
		if err != nil {
			log.Fatal(err)
		}
		records := adv.RunEpisode(newCC, mathx.NewRNG(*seed), true)
		for _, r := range records {
			samples = append(samples, cc.Sample{
				Time:           r.Time,
				ThroughputMbps: r.ThroughputMbps,
				BandwidthMbps:  r.Action.BandwidthMbps,
				Utilization:    r.Utilization,
				QueueDelayS:    r.QueueDelayS,
			})
		}
	case *tracesPath != "":
		ds, err := trace.LoadJSON(*tracesPath)
		if err != nil {
			log.Fatal(err)
		}
		samples = cc.RunTrace(newCC(), ds.Traces[0],
			netem.Config{QueuePackets: 128}, mathx.NewRNG(*seed), 0.03)
	default:
		tr := trace.Constant("const", *dur, *bw, *lat, *loss)
		samples = cc.RunTrace(newCC(), tr,
			netem.Config{QueuePackets: 128}, mathx.NewRNG(*seed), 0.03)
	}

	skip := len(samples) / 3
	fmt.Printf("%s: mean utilization %.1f%% (after warmup %.1f%%), mean throughput %.2f Mbps\n",
		*protocol,
		100*cc.MeanUtilization(samples),
		100*cc.MeanUtilization(samples[skip:]),
		cc.MeanThroughput(samples))
	if *plot {
		var tput []float64
		for _, s := range samples {
			tput = append(tput, s.ThroughputMbps)
		}
		fmt.Println(stats.ASCIIPlot(tput, 72, 8, "throughput (mbps)"))
	}
}
