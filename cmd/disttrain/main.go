// Command disttrain trains a registered domain across multiple OS processes:
// one coordinator owns the trainer and checkpoints; workers own rollout
// compute and connect over TCP (DESIGN.md §8.8). The lane count — not the
// process count — is the determinism unit, so a run with any number of
// workers is bitwise identical to `advtrain -workers <lanes>` on one machine.
//
// Usage:
//
//	disttrain -coordinator -lanes 4 -workers 2 -iters 20 -json BENCH_dist.json
//	disttrain -coordinator -addr :7070 -workers 0 &   # external workers
//	disttrain -worker -addr host:7070
//
// With -workers N > 0 the coordinator re-execs itself N times in -worker
// mode against its own listen address; -workers 0 waits for externally
// started workers instead. Workers may be killed and restarted at any time:
// lanes are reassigned to survivors and the result is unchanged. The
// coordinator itself resumes from -checkpoint-dir with -resume.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"os/exec"
	"time"

	"advnet/internal/dist"
	"advnet/internal/metrics"
	"advnet/internal/rl"
)

func main() {
	log.SetFlags(0)
	coordinator := flag.Bool("coordinator", false, "run the coordinator (trainer owner)")
	worker := flag.Bool("worker", false, "run a rollout worker against -addr")
	addr := flag.String("addr", "", "coordinator listen address / worker dial address (coordinator default 127.0.0.1:0)")
	workers := flag.Int("workers", 2, "worker processes the coordinator spawns (0 = external workers)")
	lanes := flag.Int("lanes", 4, "rollout lanes: the determinism unit, = advtrain -workers")
	iters := flag.Int("iters", 10, "training iterations")
	seed := flag.Uint64("seed", 5, "pensieve training seed")
	datasetSeed := flag.Uint64("dataset-seed", 21, "synthetic trace corpus seed")
	traces := flag.Int("traces", 16, "synthetic traces in the training corpus")
	rolloutSteps := flag.Int("rollout-steps", 0, "per-lane rollout steps (0 = domain default)")
	ckptDir := flag.String("checkpoint-dir", "", "directory for crash-safe coordinator checkpoints (empty = disabled)")
	ckptEvery := flag.Int("checkpoint-every", 1, "checkpoint every N iterations")
	resume := flag.Bool("resume", false, "continue from the newest checkpoint in -checkpoint-dir")
	benchJSON := flag.String("json", "", "write a BENCH_dist.json telemetry report here (unified schema, DESIGN.md §8.6)")
	flag.Parse()

	switch {
	case *worker && !*coordinator:
		if *addr == "" {
			log.Fatal("disttrain -worker requires -addr")
		}
		if err := dist.RunWorker(dist.WorkerConfig{Addr: *addr}); err != nil {
			log.Fatal(err)
		}
	case *coordinator && !*worker:
		runCoordinator(*addr, *workers, *lanes, *iters, *seed, *datasetSeed, *traces,
			*rolloutSteps, *ckptDir, *ckptEvery, *resume, *benchJSON)
	default:
		log.Fatal("disttrain: exactly one of -coordinator or -worker is required")
	}
}

func runCoordinator(addr string, workers, lanes, iters int, seed, datasetSeed uint64, traces,
	rolloutSteps int, ckptDir string, ckptEvery int, resume bool, benchJSON string) {
	spec, err := json.Marshal(dist.PensieveSpec{
		Seed: seed, DatasetSeed: datasetSeed, Traces: traces, RolloutSteps: rolloutSteps,
	})
	if err != nil {
		log.Fatal(err)
	}

	var reg *metrics.Registry
	if benchJSON != "" {
		reg = metrics.NewRegistry("dist")
		reg.SetConfig("seed", seed)
		reg.SetConfig("traces", traces)
		reg.SetConfig("workers", workers)
	}

	c, err := dist.NewCoordinator(dist.Config{
		Addr:       addr,
		Domain:     "pensieve",
		Spec:       spec,
		Lanes:      lanes,
		Iterations: iters,
		Checkpoint: rl.CheckpointConfig{Dir: ckptDir, Every: ckptEvery},
		Resume:     resume,
		Registry:   reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	log.Printf("coordinator listening on %s (%d lanes, %d iterations, starting at %d)",
		c.Addr(), lanes, iters, c.Iteration())

	var children []*exec.Cmd
	for i := 0; i < workers; i++ {
		cmd := exec.Command(os.Args[0], "-worker", "-addr", c.Addr())
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		children = append(children, cmd)
	}

	t0 := time.Now()
	stats, err := c.Run()
	if err != nil {
		for _, cmd := range children {
			cmd.Process.Kill()
		}
		log.Fatal(err)
	}
	for _, cmd := range children {
		if err := cmd.Wait(); err != nil {
			log.Fatalf("worker process: %v", err)
		}
	}
	if len(stats) > 0 {
		log.Printf("episode reward: %.1f -> %.1f (%d iterations, %d workers, %v, %d reassignments)",
			stats[0].MeanEpReward, stats[len(stats)-1].MeanEpReward,
			len(stats), workers, time.Since(t0).Round(time.Millisecond), c.Reassignments())
	}
	if reg != nil {
		if len(stats) > 0 {
			reg.SetMetric("final_ep_reward", stats[len(stats)-1].MeanEpReward, metrics.Info("reward"))
			ser := reg.Series("ep_reward", 1, metrics.Info("reward"))
			for _, s := range stats {
				ser.Append(float64(s.Iteration), s.MeanEpReward)
			}
		}
		if err := reg.WriteJSON(benchJSON); err != nil {
			log.Fatal(err)
		}
		log.Printf("telemetry written to %s", benchJSON)
	}
}
