// Command regress is the CI front-end for the §5 "Guiding protocol
// development" workflow: record a protocol's baseline on an adversarial
// workload, then check later protocol versions against it.
//
// Usage:
//
//	regress record -traces adv.json -protocol bb -o suite.json
//	regress check  -suite suite.json -protocol bb [-tolerance 0.1]
//
// check exits non-zero when the protocol regressed beyond the tolerance,
// so it drops straight into a CI pipeline.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"advnet/internal/abr"
	"advnet/internal/core"
	"advnet/internal/mathx"
	"advnet/internal/trace"
)

func protocolByName(name string) abr.Protocol {
	switch name {
	case "bb":
		return abr.NewBB()
	case "mpc":
		return abr.NewMPC()
	case "rate":
		return abr.NewRateBased()
	case "bola":
		return abr.NewBOLA()
	}
	log.Fatalf("unknown protocol %q", name)
	return nil
}

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: regress record|check [flags]")
		os.Exit(2)
	}
	video := abr.NewVideo(mathx.NewRNG(1), abr.DefaultVideoConfig())

	switch os.Args[1] {
	case "record":
		fs := flag.NewFlagSet("record", flag.ExitOnError)
		tracesPath := fs.String("traces", "", "adversarial trace dataset (JSON)")
		protoName := fs.String("protocol", "bb", "protocol to record: bb|mpc|rate|bola")
		out := fs.String("o", "suite.json", "output suite path")
		rtt := fs.Float64("rtt", 0.08, "round-trip seconds")
		workers := fs.Int("workers", 1, "parallel evaluation sessions (baseline is identical for any value)")
		_ = fs.Parse(os.Args[2:])
		if *tracesPath == "" {
			log.Fatal("need -traces FILE (generate one with advtrain -traces-out)")
		}
		ds, err := trace.LoadJSON(*tracesPath)
		if err != nil {
			log.Fatal(err)
		}
		suite, err := core.NewABRRegressionSuite(video, protocolByName(*protoName), ds, *rtt, *workers)
		if err != nil {
			log.Fatal(err)
		}
		if err := suite.Save(*out); err != nil {
			log.Fatal(err)
		}
		log.Printf("recorded %s baseline on %d traces: mean QoE %.3f, p5 %.3f -> %s",
			*protoName, len(ds.Traces), suite.BaselineMeanQoE, suite.BaselineP5QoE, *out)

	case "check":
		fs := flag.NewFlagSet("check", flag.ExitOnError)
		suitePath := fs.String("suite", "suite.json", "suite recorded by `regress record`")
		protoName := fs.String("protocol", "bb", "protocol to check")
		tolerance := fs.Float64("tolerance", 0.1, "allowed mean-QoE drop before failing")
		workers := fs.Int("workers", 1, "parallel evaluation sessions (measurements are identical for any value)")
		_ = fs.Parse(os.Args[2:])
		suite, err := core.LoadABRRegressionSuite(*suitePath)
		if err != nil {
			log.Fatal(err)
		}
		res, err := suite.Check(video, protocolByName(*protoName), *tolerance, *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mean QoE %.3f (baseline %+.3f), p5 %.3f (baseline %+.3f)\n",
			res.MeanQoE, res.MeanDelta, res.P5QoE, res.P5Delta)
		if !res.Passed {
			fmt.Println("REGRESSION: mean QoE dropped beyond tolerance")
			os.Exit(1)
		}
		fmt.Println("ok")

	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", os.Args[1])
		os.Exit(2)
	}
}
