// Command abreval evaluates ABR protocols on a trace dataset and prints a
// per-protocol QoE table (mean, percentiles) plus CDF rows.
//
// Usage:
//
//	abreval -traces traces.json [-protocols bb,mpc,rate] [-replay chunk|wall]
//
// With -generate N the dataset is synthesized instead of read:
//
//	abreval -generate 50 -kind random|fcc|3g
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"advnet/internal/abr"
	"advnet/internal/core"
	"advnet/internal/mathx"
	"advnet/internal/metrics"
	"advnet/internal/stats"
	"advnet/internal/trace"
)

func main() {
	log.SetFlags(0)
	tracesPath := flag.String("traces", "", "JSON trace dataset (from advtrain or SaveJSON)")
	generate := flag.Int("generate", 0, "synthesize this many traces instead of reading a file")
	kind := flag.String("kind", "random", "generator for -generate: random, fcc, 3g")
	protos := flag.String("protocols", "bb,mpc,rate,bola", "comma-separated protocols")
	replay := flag.String("replay", "chunk", "replay semantic: chunk (per-chunk bandwidth) or wall (wall-time)")
	seed := flag.Uint64("seed", 1, "seed for generation")
	workers := flag.Int("workers", 1, "parallel evaluation sessions (>1 fans traces out across goroutines; results are identical for any value)")
	benchJSON := flag.String("bench-json", "", "write a BENCH_eval.json telemetry report here (unified schema, DESIGN.md §8.6)")
	flag.Parse()

	var ds *trace.Dataset
	var err error
	switch {
	case *tracesPath != "":
		ds, err = trace.LoadJSON(*tracesPath)
		if err != nil {
			log.Fatal(err)
		}
	case *generate > 0:
		rng := mathx.NewRNG(*seed)
		switch *kind {
		case "random":
			cfg := trace.RandomConfig{Points: 48, Duration: 4, BandwidthLo: 0.8, BandwidthHi: 4.8, LatencyLo: 40}
			ds = trace.GenerateRandomDataset(rng, cfg, *generate, "random")
		case "fcc":
			ds = trace.GenerateFCCLikeDataset(rng, trace.DefaultFCCLike(), *generate, "fcc")
		case "3g":
			ds = trace.GenerateThreeGLikeDataset(rng, trace.DefaultThreeGLike(), *generate, "3g")
		default:
			log.Fatalf("unknown -kind %q", *kind)
		}
	default:
		log.Fatal("need -traces FILE or -generate N")
	}

	video := abr.NewVideo(mathx.NewRNG(1), abr.DefaultVideoConfig())
	fmt.Printf("dataset %q: %d traces, %d-chunk video\n\n", ds.Name, len(ds.Traces), video.NumChunks())

	var reg *metrics.Registry
	if *benchJSON != "" {
		reg = metrics.NewRegistry("eval")
		reg.SetConfig("dataset", ds.Name)
		reg.SetConfig("traces", len(ds.Traces))
		reg.SetConfig("protocols", *protos)
		reg.SetConfig("replay", *replay)
		reg.SetConfig("workers", *workers)
		reg.SetConfig("seed", *seed)
	}

	for _, name := range strings.Split(*protos, ",") {
		var p abr.Protocol
		switch strings.TrimSpace(name) {
		case "bb":
			p = abr.NewBB()
		case "mpc":
			p = abr.NewMPC()
		case "rate":
			p = abr.NewRateBased()
		case "bola":
			p = abr.NewBOLA()
		default:
			log.Fatalf("unknown protocol %q (trained Pensieve models need the library API)", name)
		}
		var q []float64
		t0 := time.Now()
		if *replay == "chunk" {
			q, err = core.EvaluateABRChunked(video, ds, p, 0.08, *workers)
		} else {
			q, err = core.EvaluateABR(video, ds, p, 0.08, *workers)
		}
		if err != nil {
			log.Fatal(err)
		}
		if reg != nil {
			core.EmitEvalMetrics(reg, p.Name(), q, time.Since(t0).Seconds())
		}
		fmt.Printf("%-6s mean=%7.3f  p5=%7.3f  p50=%7.3f  p95=%7.3f\n",
			p.Name(), stats.Mean(q), stats.Percentile(q, 5), stats.Percentile(q, 50), stats.Percentile(q, 95))
	}

	if reg != nil {
		if err := reg.WriteJSON(*benchJSON); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntelemetry written to %s\n", *benchJSON)
	}
}
