// Command serve storms the policy-serving inference engine and reports
// machine-readable performance telemetry: throughput, realized batching
// density, and p50/p95/p99 serving latency, plus the single-request Predict
// baseline the batched path is measured against — and, since the graceful-
// degradation layer, an overload phase that saturates a deliberately
// starved engine behind per-request deadlines and reports shed-rate,
// fallback-rate, and client-observed decision latency, plus a scripted
// reload-chaos phase that trips and recovers the circuit breaker.
//
// Usage:
//
//	serve -policy pensieve.json -storm 64 -n 200000 -json BENCH_serve.json
//	serve -levels 6 -workers 2 -batch 32      # fresh random net, stdout only
//	serve -deadline 500us -overstorm 256      # overload-phase knobs
//
// The -policy file may be any format the repository writes: a standalone
// policy envelope, a full PPO/A2C trainer checkpoint, or bare MLP JSON.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"advnet/internal/abr"
	"advnet/internal/faults"
	"advnet/internal/mathx"
	"advnet/internal/metrics"
	"advnet/internal/nn"
	"advnet/internal/rl"
	"advnet/internal/serve"
	"advnet/internal/stats"
)

func main() {
	log.SetFlags(0)
	policyPath := flag.String("policy", "", "policy network to serve (envelope, trainer checkpoint, or bare MLP JSON); empty = fresh random Pensieve net")
	levels := flag.Int("levels", 6, "bitrate-ladder size when synthesizing a fresh net (ignored with -policy)")
	workers := flag.Int("workers", 0, "shard workers (0 = GOMAXPROCS)")
	batch := flag.Int("batch", 32, "max batch per flush (and each worker's cache capacity)")
	wait := flag.Duration("wait", 100*time.Microsecond, "batching window: how long a partial batch waits for more requests")
	storm := flag.Int("storm", 64, "concurrent client goroutines")
	n := flag.Int("n", 200_000, "total requests across the storm")
	deadline := flag.Duration("deadline", 2*time.Millisecond, "per-request deadline in the overload phase (0 skips the phase)")
	overstorm := flag.Int("overstorm", 96, "concurrent clients saturating the starved overload engine")
	stall := flag.Duration("stall", 5*time.Millisecond, "injected per-flush inference stall in the overload phase (emulates a model slower than the offered load)")
	jsonOut := flag.String("json", "", "write the machine-readable report here (e.g. BENCH_serve.json)")
	seed := flag.Uint64("seed", 1, "seed for the synthesized net and request features")
	flag.Parse()

	rng := mathx.NewRNG(*seed)
	var net *nn.MLP
	if *policyPath != "" {
		var err error
		if net, err = rl.LoadPolicyNet(*policyPath); err != nil {
			log.Fatal(err)
		}
	} else {
		net = abr.NewPensieveNet(rng, *levels)
	}

	cfg := serve.Config{Workers: *workers, MaxBatch: *batch, MaxWait: *wait, Seed: *seed}
	eng, err := serve.NewEngine(serve.NewRegistry(net), cfg)
	if err != nil {
		log.Fatal(err)
	}
	in := eng.InputSize()

	// One shared feature pool: request cost must be serving, not generation.
	feats := make([][]float64, 256)
	for i := range feats {
		feats[i] = make([]float64, in)
		for j := range feats[i] {
			feats[i][j] = rng.Uniform(-1, 1)
		}
	}

	// Storm phase.
	perClient := *n / *storm
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < *storm; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := eng.Select(feats[(g+i)%len(feats)]); err != nil {
					log.Fatal(err)
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)
	st := eng.Stats()
	eng.Close()

	// Baseline phase: single-goroutine, single-request Predict (the
	// pre-engine serving path: one allocation-heavy forward pass per chunk).
	baseN := min(*n, 100_000)
	bStart := time.Now()
	for i := 0; i < baseN; i++ {
		_ = mathx.ArgMax(net.Predict(feats[i%len(feats)]))
	}
	bWall := time.Since(bStart)

	// BENCH_serve.json under the unified schema (DESIGN.md §8.6).
	reg := metrics.NewRegistry("serve")
	reg.SetConfig("workers", st.Workers)
	reg.SetConfig("max_batch", *batch)
	reg.SetConfig("max_wait_us", float64(*wait)/float64(time.Microsecond))
	reg.SetConfig("storm", *storm)
	reg.SetConfig("requests", perClient**storm)
	reg.SetConfig("arch", net.Sizes())
	if *policyPath != "" {
		reg.SetConfig("policy", *policyPath)
	}
	st.EmitMetrics(reg, wall.Seconds())
	engineRPS := float64(st.Served) / wall.Seconds()
	baselineRPS := float64(baseN) / bWall.Seconds()
	reg.SetMetric("baseline_requests", float64(baseN), metrics.Info("requests"))
	reg.SetMetric("baseline_rps", baselineRPS, metrics.Info("req/s"))
	reg.SetMetric("speedup_over_predict", engineRPS/baselineRPS, metrics.HigherIsBetter("x"))

	fmt.Printf("engine:   %.0f req/s over %d requests (workers=%d batch≤%d avg batch %.1f)\n",
		engineRPS, st.Served, st.Workers, *batch, st.AvgBatch)
	fmt.Printf("latency:  %s (µs, enqueue→computed)\n", st.Latency)
	fmt.Printf("baseline: %.0f req/s single-request Predict\n", baselineRPS)
	fmt.Printf("speedup:  %.2fx\n", engineRPS/baselineRPS)

	if *deadline > 0 {
		overloadPhase(reg, net, rng, *batch, *wait, *deadline, *stall, *overstorm, *n, *seed)
	}
	breakerPhase(reg, net, rng)

	if *jsonOut != "" {
		if err := reg.WriteJSON(*jsonOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report:   %s\n", *jsonOut)
	}
}

// overloadPhase measures the degradation contract (DESIGN.md §8.7): a
// deliberately starved engine — one shard, a queue no deeper than one batch
// — is saturated by a closed loop of overstorm clients, each request
// carrying a deadline. Shed decisions degrade to PensieveServe's BB
// fallback, so every client still gets an answer, and the client-observed
// decision latency (served and degraded alike) is bounded near the deadline
// instead of growing with the backlog. The phase emits the degradation
// metric group: shed/fallback rates and the decision-latency distribution.
func overloadPhase(reg *metrics.Registry, net *nn.MLP, rng *mathx.RNG, batch int, wait, deadline, stall time.Duration, overstorm, n int, seed uint64) {
	levels := net.InputSize() - abr.FeatureSize(0)
	if levels <= 0 || net.InputSize() != abr.FeatureSize(levels) || net.OutputSize() != levels {
		fmt.Printf("overload: skipped (architecture %v is not a Pensieve policy; no ladder to degrade onto)\n", net.Sizes())
		return
	}

	// In-process clients cannot outrun a real GEMM shard, so slow inference
	// is injected at the serve.flush chaos point — the same lever `make
	// faults` uses — to put the offered closed-loop load at a multiple of
	// the shard's capacity.
	if stall > 0 {
		faults.Set("serve.flush", func(args ...any) error { time.Sleep(stall); return nil })
		defer faults.Clear("serve.flush")
	}

	// One shard with a one-batch queue: capacity is one core's GEMM rate,
	// and the closed loop of overstorm clients offers far more than that.
	eng, err := serve.NewEngine(serve.NewRegistry(net), serve.Config{
		Workers: 1, MaxBatch: batch, MaxWait: wait, QueueDepth: batch,
		DefaultDeadline: deadline, Seed: seed + 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	ps := abr.NewPensieveServe(eng)

	video := abr.NewVideo(rng.Split(), abr.DefaultVideoConfig())
	// The phase runs at stall-dominated (ms) timescales; cap its volume so
	// the degradation group costs seconds, not the full -n storm's budget.
	perClient := max(min(n, 20_000)/overstorm, 1)
	lats := make([]*stats.Reservoir, overstorm)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < overstorm; g++ {
		lats[g] = stats.NewReservoir(0, seed+uint64(g)+2)
		wg.Add(1)
		go func(g int, crng *mathx.RNG) {
			defer wg.Done()
			// Each client mutates its private observation per decision —
			// the shape a real session would produce, driven by RNG state.
			o := &abr.Observation{
				TotalChunks:    video.NumChunks(),
				Levels:         levels,
				BitratesKbps:   video.BitratesKbps,
				ChunkSeconds:   video.ChunkSeconds,
				LastLevel:      -1,
				NextSizesBits:  make([]float64, levels),
				ThroughputHist: make([]float64, 0, abr.FeatureHistory),
				DownloadHist:   make([]float64, 0, abr.FeatureHistory),
			}
			for i := 0; i < perClient; i++ {
				o.ChunkIndex = i % video.NumChunks()
				o.BufferS = crng.Uniform(0, 20)
				copy(o.NextSizesBits, video.ChunkSizes(o.ChunkIndex))
				if len(o.ThroughputHist) == abr.FeatureHistory {
					o.ThroughputHist = o.ThroughputHist[1:]
					o.DownloadHist = o.DownloadHist[1:]
				}
				o.ThroughputHist = append(o.ThroughputHist, crng.Uniform(0.3, 6))
				o.DownloadHist = append(o.DownloadHist, crng.Uniform(0.5, 6))
				t0 := time.Now()
				o.LastLevel = ps.SelectLevel(o)
				lats[g].Add(float64(time.Since(t0)) / float64(time.Microsecond))
			}
		}(g, rng.Split())
	}
	wg.Wait()
	owall := time.Since(start)
	ost := eng.Stats()

	offered := ps.Decisions()
	decisionLat := stats.Summarize(lats...)
	reg.SetConfig("overload_deadline_us", float64(deadline)/float64(time.Microsecond))
	reg.SetConfig("overload_storm", overstorm)
	reg.SetConfig("overload_stall_us", float64(stall)/float64(time.Microsecond))
	reg.SetMetric("degradation_offered", float64(offered), metrics.Info("requests"))
	reg.SetMetric("degradation_served", float64(ost.Served), metrics.Info("requests"))
	reg.SetMetric("degradation_shed", float64(ost.Shed()), metrics.Info("requests"))
	reg.SetMetric("degradation_shed_rate", ost.ShedRate(), metrics.Info("fraction"))
	reg.SetMetric("degradation_fallback_rate", ps.FallbackRate(), metrics.Info("fraction"))
	// The contract metric: decisions stay answered at a bounded latency even
	// with the engine drowning. Gated lower-is-better like any latency.
	reg.SetDistribution("degradation_decision_us", decisionLat, metrics.LowerIsBetter("us"))

	fmt.Printf("overload: %d clients vs 1 starved shard: %.0f req/s offered, shed rate %.3f, fallback rate %.3f (%.2fs)\n",
		overstorm, float64(offered)/owall.Seconds(), ost.ShedRate(), ps.FallbackRate(), owall.Seconds())
	fmt.Printf("degraded: decision p50 %.0fµs p99 %.0fµs max %.0fµs (deadline %v + one flush)\n",
		decisionLat.P50, decisionLat.P99, decisionLat.Max, deadline)
}

// breakerPhase scripts a reload outage end to end on a throwaway registry:
// a corrupt checkpoint exhausts the retry budget and trips the breaker
// (last-good snapshot keeps serving), a reload during cooldown is refused
// with the typed open error, and after cooldown the repaired file closes
// the breaker through a half-open probe. The script is deterministic — an
// injected clock drives the cooldown — so its metrics are exact.
func breakerPhase(reg *metrics.Registry, net *nn.MLP, rng *mathx.RNG) {
	dir, err := os.MkdirTemp("", "serve-breaker")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	good := filepath.Join(dir, "good.json")
	if err := rl.SavePolicyNet(good, net); err != nil {
		log.Fatal(err)
	}
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte(`{"version":1,"kind":"policy","sha256":"00","payload":{}}`), 0o644); err != nil {
		log.Fatal(err)
	}

	clock := time.Unix(0, 0)
	breg := serve.NewRegistry(net)
	rel := serve.NewReloader(breg, rng.Split(), serve.ReloadConfig{
		MaxAttempts: 2, TripAfter: 1, Cooldown: 30 * time.Second,
		Sleep: func(d time.Duration) { clock = clock.Add(d) },
		Now:   func() time.Time { return clock },
	})
	lastGood := breg.Current()

	refused := 0
	if _, err := rel.Reload(corrupt); err == nil {
		log.Fatal("breaker phase: corrupt reload succeeded")
	}
	if _, err := rel.Reload(good); err != nil { // inside cooldown: refused
		refused++
	}
	if breg.Current() != lastGood {
		log.Fatal("breaker phase: failed reloads displaced the serving snapshot")
	}
	clock = clock.Add(31 * time.Second) // cooldown elapses
	snap, err := rel.Reload(good)      // half-open probe repairs service
	if err != nil {
		log.Fatalf("breaker phase: recovery probe failed: %v", err)
	}
	rst := rel.Stats()
	reg.SetMetric("breaker_trips", float64(rst.Trips), metrics.Info("trips"))
	reg.SetMetric("breaker_refused", float64(refused), metrics.Info("reloads"))
	reg.SetMetric("breaker_reload_attempts", float64(rst.Attempts), metrics.Info("attempts"))
	reg.SetMetric("breaker_recovered", float64(rst.Reloads), metrics.Info("reloads"))
	fmt.Printf("breaker:  tripped on corrupt checkpoint (%d attempts), refused %d mid-cooldown, recovered to snapshot %d (%s)\n",
		rst.Attempts, refused, snap.ID(), rst.StateStr)
}
