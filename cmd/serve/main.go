// Command serve storms the policy-serving inference engine and reports
// machine-readable performance telemetry: throughput, realized batching
// density, and p50/p95/p99 serving latency, plus the single-request Predict
// baseline the batched path is measured against.
//
// Usage:
//
//	serve -policy pensieve.json -storm 64 -n 200000 -json BENCH_serve.json
//	serve -levels 6 -workers 2 -batch 32      # fresh random net, stdout only
//
// The -policy file may be any format the repository writes: a standalone
// policy envelope, a full PPO/A2C trainer checkpoint, or bare MLP JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"advnet/internal/abr"
	"advnet/internal/fsx"
	"advnet/internal/mathx"
	"advnet/internal/nn"
	"advnet/internal/rl"
	"advnet/internal/serve"
	"advnet/internal/stats"
)

// report is the BENCH_serve.json schema.
type report struct {
	Config struct {
		Workers   int     `json:"workers"`
		MaxBatch  int     `json:"max_batch"`
		MaxWaitUs float64 `json:"max_wait_us"`
		Storm     int     `json:"storm"`
		Requests  int     `json:"requests"`
		Arch      []int   `json:"arch"`
		Policy    string  `json:"policy,omitempty"`
	} `json:"config"`
	Engine struct {
		Served        uint64        `json:"served"`
		Batches       uint64        `json:"batches"`
		AvgBatch      float64       `json:"avg_batch"`
		ThroughputRPS float64       `json:"throughput_rps"`
		WallSeconds   float64       `json:"wall_seconds"`
		LatencyUs     stats.Summary `json:"latency_us"`
	} `json:"engine"`
	Baseline struct {
		Requests      int     `json:"requests"`
		ThroughputRPS float64 `json:"throughput_rps"`
	} `json:"baseline"`
	Speedup float64 `json:"speedup"`
}

func main() {
	log.SetFlags(0)
	policyPath := flag.String("policy", "", "policy network to serve (envelope, trainer checkpoint, or bare MLP JSON); empty = fresh random Pensieve net")
	levels := flag.Int("levels", 6, "bitrate-ladder size when synthesizing a fresh net (ignored with -policy)")
	workers := flag.Int("workers", 0, "shard workers (0 = GOMAXPROCS)")
	batch := flag.Int("batch", 32, "max batch per flush (and each worker's cache capacity)")
	wait := flag.Duration("wait", 100*time.Microsecond, "batching window: how long a partial batch waits for more requests")
	storm := flag.Int("storm", 64, "concurrent client goroutines")
	n := flag.Int("n", 200_000, "total requests across the storm")
	jsonOut := flag.String("json", "", "write the machine-readable report here (e.g. BENCH_serve.json)")
	seed := flag.Uint64("seed", 1, "seed for the synthesized net and request features")
	flag.Parse()

	rng := mathx.NewRNG(*seed)
	var net *nn.MLP
	if *policyPath != "" {
		var err error
		if net, err = rl.LoadPolicyNet(*policyPath); err != nil {
			log.Fatal(err)
		}
	} else {
		net = abr.NewPensieveNet(rng, *levels)
	}

	cfg := serve.Config{Workers: *workers, MaxBatch: *batch, MaxWait: *wait, Seed: *seed}
	eng := serve.NewEngine(serve.NewRegistry(net), cfg)
	in := eng.InputSize()

	// One shared feature pool: request cost must be serving, not generation.
	feats := make([][]float64, 256)
	for i := range feats {
		feats[i] = make([]float64, in)
		for j := range feats[i] {
			feats[i][j] = rng.Uniform(-1, 1)
		}
	}

	// Storm phase.
	perClient := *n / *storm
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < *storm; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := eng.Select(feats[(g+i)%len(feats)]); err != nil {
					log.Fatal(err)
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)
	st := eng.Stats()
	eng.Close()

	// Baseline phase: single-goroutine, single-request Predict (the
	// pre-engine serving path: one allocation-heavy forward pass per chunk).
	baseN := min(*n, 100_000)
	bStart := time.Now()
	for i := 0; i < baseN; i++ {
		_ = mathx.ArgMax(net.Predict(feats[i%len(feats)]))
	}
	bWall := time.Since(bStart)

	var r report
	r.Config.Workers = st.Workers
	r.Config.MaxBatch = *batch
	r.Config.MaxWaitUs = float64(*wait) / float64(time.Microsecond)
	r.Config.Storm = *storm
	r.Config.Requests = perClient * *storm
	r.Config.Arch = net.Sizes()
	r.Config.Policy = *policyPath
	r.Engine.Served = st.Served
	r.Engine.Batches = st.Batches
	r.Engine.AvgBatch = st.AvgBatch
	r.Engine.WallSeconds = wall.Seconds()
	r.Engine.ThroughputRPS = float64(st.Served) / wall.Seconds()
	r.Engine.LatencyUs = st.Latency
	r.Baseline.Requests = baseN
	r.Baseline.ThroughputRPS = float64(baseN) / bWall.Seconds()
	r.Speedup = r.Engine.ThroughputRPS / r.Baseline.ThroughputRPS

	fmt.Printf("engine:   %.0f req/s over %d requests (workers=%d batch≤%d avg batch %.1f)\n",
		r.Engine.ThroughputRPS, st.Served, st.Workers, *batch, st.AvgBatch)
	fmt.Printf("latency:  %s (µs, enqueue→computed)\n", st.Latency)
	fmt.Printf("baseline: %.0f req/s single-request Predict\n", r.Baseline.ThroughputRPS)
	fmt.Printf("speedup:  %.2fx\n", r.Speedup)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := fsx.WriteFileAtomic(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report:   %s\n", *jsonOut)
	}
}
