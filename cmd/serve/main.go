// Command serve storms the policy-serving inference engine and reports
// machine-readable performance telemetry: throughput, realized batching
// density, and p50/p95/p99 serving latency, plus the single-request Predict
// baseline the batched path is measured against.
//
// Usage:
//
//	serve -policy pensieve.json -storm 64 -n 200000 -json BENCH_serve.json
//	serve -levels 6 -workers 2 -batch 32      # fresh random net, stdout only
//
// The -policy file may be any format the repository writes: a standalone
// policy envelope, a full PPO/A2C trainer checkpoint, or bare MLP JSON.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"advnet/internal/abr"
	"advnet/internal/mathx"
	"advnet/internal/metrics"
	"advnet/internal/nn"
	"advnet/internal/rl"
	"advnet/internal/serve"
)

func main() {
	log.SetFlags(0)
	policyPath := flag.String("policy", "", "policy network to serve (envelope, trainer checkpoint, or bare MLP JSON); empty = fresh random Pensieve net")
	levels := flag.Int("levels", 6, "bitrate-ladder size when synthesizing a fresh net (ignored with -policy)")
	workers := flag.Int("workers", 0, "shard workers (0 = GOMAXPROCS)")
	batch := flag.Int("batch", 32, "max batch per flush (and each worker's cache capacity)")
	wait := flag.Duration("wait", 100*time.Microsecond, "batching window: how long a partial batch waits for more requests")
	storm := flag.Int("storm", 64, "concurrent client goroutines")
	n := flag.Int("n", 200_000, "total requests across the storm")
	jsonOut := flag.String("json", "", "write the machine-readable report here (e.g. BENCH_serve.json)")
	seed := flag.Uint64("seed", 1, "seed for the synthesized net and request features")
	flag.Parse()

	rng := mathx.NewRNG(*seed)
	var net *nn.MLP
	if *policyPath != "" {
		var err error
		if net, err = rl.LoadPolicyNet(*policyPath); err != nil {
			log.Fatal(err)
		}
	} else {
		net = abr.NewPensieveNet(rng, *levels)
	}

	cfg := serve.Config{Workers: *workers, MaxBatch: *batch, MaxWait: *wait, Seed: *seed}
	eng := serve.NewEngine(serve.NewRegistry(net), cfg)
	in := eng.InputSize()

	// One shared feature pool: request cost must be serving, not generation.
	feats := make([][]float64, 256)
	for i := range feats {
		feats[i] = make([]float64, in)
		for j := range feats[i] {
			feats[i][j] = rng.Uniform(-1, 1)
		}
	}

	// Storm phase.
	perClient := *n / *storm
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < *storm; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := eng.Select(feats[(g+i)%len(feats)]); err != nil {
					log.Fatal(err)
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)
	st := eng.Stats()
	eng.Close()

	// Baseline phase: single-goroutine, single-request Predict (the
	// pre-engine serving path: one allocation-heavy forward pass per chunk).
	baseN := min(*n, 100_000)
	bStart := time.Now()
	for i := 0; i < baseN; i++ {
		_ = mathx.ArgMax(net.Predict(feats[i%len(feats)]))
	}
	bWall := time.Since(bStart)

	// BENCH_serve.json under the unified schema (DESIGN.md §8.6).
	reg := metrics.NewRegistry("serve")
	reg.SetConfig("workers", st.Workers)
	reg.SetConfig("max_batch", *batch)
	reg.SetConfig("max_wait_us", float64(*wait)/float64(time.Microsecond))
	reg.SetConfig("storm", *storm)
	reg.SetConfig("requests", perClient**storm)
	reg.SetConfig("arch", net.Sizes())
	if *policyPath != "" {
		reg.SetConfig("policy", *policyPath)
	}
	st.EmitMetrics(reg, wall.Seconds())
	engineRPS := float64(st.Served) / wall.Seconds()
	baselineRPS := float64(baseN) / bWall.Seconds()
	reg.SetMetric("baseline_requests", float64(baseN), metrics.Info("requests"))
	reg.SetMetric("baseline_rps", baselineRPS, metrics.Info("req/s"))
	reg.SetMetric("speedup_over_predict", engineRPS/baselineRPS, metrics.HigherIsBetter("x"))

	fmt.Printf("engine:   %.0f req/s over %d requests (workers=%d batch≤%d avg batch %.1f)\n",
		engineRPS, st.Served, st.Workers, *batch, st.AvgBatch)
	fmt.Printf("latency:  %s (µs, enqueue→computed)\n", st.Latency)
	fmt.Printf("baseline: %.0f req/s single-request Predict\n", baselineRPS)
	fmt.Printf("speedup:  %.2fx\n", engineRPS/baselineRPS)

	if *jsonOut != "" {
		if err := reg.WriteJSON(*jsonOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report:   %s\n", *jsonOut)
	}
}
