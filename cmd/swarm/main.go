// Command swarm simulates a swarm of concurrent ABR clients sharing
// bottleneck links on one virtual clock and reports machine-readable QoE,
// fairness, and throughput telemetry. It is the scale harness behind
// `make swarm-bench`: 100k+ concurrent sessions on one machine with a
// deterministic, worker-count-independent outcome.
//
// Usage:
//
//	swarm -clients 100000 -groups 1024 -capacity 40 -json BENCH_swarm.json
//	swarm -clients 64 -groups 4 -backend netem -cc cubic -loss 0.01
//	swarm -clients 5000 -traces traces.json    # capacity from a trace file
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"
	"time"

	"advnet/internal/abr"
	"advnet/internal/cc"
	"advnet/internal/mathx"
	"advnet/internal/metrics"
	"advnet/internal/netem"
	"advnet/internal/nn"
	"advnet/internal/rl"
	"advnet/internal/serve"
	"advnet/internal/swarm"
	"advnet/internal/trace"
)

// protocolFactory parses a protocol spec: one name, a comma-separated list
// (clients round-robin through it), or "mixed" (= bb,rate,bola,mpc — note
// MPC's exhaustive lookahead makes it ~50x costlier per decision than the
// heuristics, which dominates wall time at 100k-client scale).
func protocolFactory(spec string) (func(int) abr.Protocol, error) {
	mk := map[string]func() abr.Protocol{
		"bb":   func() abr.Protocol { return abr.NewBB() },
		"rate": func() abr.Protocol { return abr.NewRateBased() },
		"bola": func() abr.Protocol { return abr.NewBOLA() },
		"mpc":  func() abr.Protocol { return abr.NewMPC() },
	}
	if spec == "mixed" {
		spec = "bb,rate,bola,mpc"
	}
	names := strings.Split(spec, ",")
	order := make([]func() abr.Protocol, len(names))
	for i, name := range names {
		f, ok := mk[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown protocol %q (bb|rate|bola|mpc, comma-separable, or mixed)", name)
		}
		order[i] = f
	}
	return func(i int) abr.Protocol { return order[i%len(order)]() }, nil
}

func ccFactory(name string) (func() netem.CongestionController, error) {
	switch name {
	case "reno":
		return func() netem.CongestionController { return cc.NewReno() }, nil
	case "cubic":
		return func() netem.CongestionController { return cc.NewCubic() }, nil
	case "bbr":
		return func() netem.CongestionController { return cc.NewBBR() }, nil
	case "copa":
		return func() netem.CongestionController { return cc.NewCopa() }, nil
	case "htcp":
		return func() netem.CongestionController { return cc.NewHTCP() }, nil
	case "vivace":
		return func() netem.CongestionController { return cc.NewVivace() }, nil
	}
	return nil, fmt.Errorf("unknown congestion controller %q (reno|cubic|bbr|copa|htcp|vivace)", name)
}

func main() {
	log.SetFlags(0)
	clients := flag.Int("clients", 100_000, "total simulated viewers")
	groups := flag.Int("groups", 1024, "independent shared bottlenecks")
	workers := flag.Int("workers", 0, "OS parallelism (0 = GOMAXPROCS); never changes results")
	seed := flag.Uint64("seed", 1, "master seed; same seed = bitwise-identical report")
	protocol := flag.String("protocol", "mixed", "ABR protocol per client: bb|rate|bola|mpc|mixed, or serve (all clients share one policy-serving engine)")
	policyPath := flag.String("policy", "", "policy file for -protocol serve (empty = fresh random Pensieve net from -seed)")
	deadline := flag.Duration("deadline", 2*time.Millisecond, "per-decision serving deadline for -protocol serve (shed decisions fall back to BB); 0 disables")
	serveWorkers := flag.Int("serve-workers", 0, "engine shard workers for -protocol serve (0 = GOMAXPROCS)")
	capacity := flag.Float64("capacity", 40, "per-group bottleneck capacity in Mbps (ignored with -traces)")
	tracesPath := flag.String("traces", "", "trace dataset JSON; group g replays trace g mod len cyclically")
	chunks := flag.Int("chunks", 48, "video length in chunks")
	rtt := flag.Float64("rtt", 0.08, "per-chunk request RTT in seconds (fluid backend)")
	window := flag.Float64("window", 30, "client start stagger window in seconds")
	backend := flag.String("backend", "fluid", "bottleneck model: fluid|netem")
	ccName := flag.String("cc", "cubic", "congestion controller per client (netem backend)")
	delay := flag.Float64("delay", 20, "one-way propagation delay in ms (netem backend)")
	loss := flag.Float64("loss", 0, "random loss rate (netem backend)")
	queue := flag.Int("queue", 64, "bottleneck queue in packets (netem backend)")
	jsonOut := flag.String("json", "", "write the machine-readable report here (e.g. BENCH_swarm.json)")
	flag.Parse()

	videoCfg := abr.DefaultVideoConfig()
	videoCfg.NumChunks = *chunks

	// -protocol serve routes every client's decision through one shared
	// policy-serving engine, measuring the serving stack under the swarm's
	// realistic interarrivals; shed decisions degrade to the BB fallback.
	var newProto func(int) abr.Protocol
	var serveMode *swarm.ServeMode
	if *protocol == "serve" {
		var net *nn.MLP
		var err error
		if *policyPath != "" {
			if net, err = rl.LoadPolicyNet(*policyPath); err != nil {
				log.Fatal(err)
			}
		} else {
			net = abr.NewPensieveNet(mathx.NewRNG(*seed), len(videoCfg.BitratesKbps))
		}
		eng, err := serve.NewEngine(serve.NewRegistry(net), serve.Config{Workers: *serveWorkers, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		defer eng.Close()
		serveMode = swarm.NewServeMode(eng, *deadline)
		newProto = serveMode.NewProtocol
	} else {
		var err error
		if newProto, err = protocolFactory(*protocol); err != nil {
			log.Fatal(err)
		}
	}

	cfg := swarm.Config{
		Clients:      *clients,
		Groups:       *groups,
		Workers:      *workers,
		Seed:         *seed,
		Video:        videoCfg,
		NewProtocol:  newProto,
		CapacityMbps: *capacity,
		RTTSeconds:   *rtt,
		StartWindowS: *window,
	}
	switch *backend {
	case "fluid":
	case "netem":
		cfg.Backend = swarm.NetemBackend
		cfg.OneWayDelayMs = *delay
		cfg.LossRate = *loss
		cfg.QueuePackets = *queue
		newCC, err := ccFactory(*ccName)
		if err != nil {
			log.Fatal(err)
		}
		cfg.NewCC = newCC
	default:
		log.Fatalf("unknown backend %q (fluid|netem)", *backend)
	}
	if *tracesPath != "" {
		ds, err := trace.LoadJSON(*tracesPath)
		if err != nil {
			log.Fatal(err)
		}
		if len(ds.Traces) == 0 {
			log.Fatalf("trace dataset %s is empty", *tracesPath)
		}
		// One shared-capacity schedule for every group keeps the CLI
		// simple; per-group traces are a library-level Config choice.
		cfg.Trace = ds.Traces[0]
	}

	start := time.Now()
	res, err := swarm.Run(cfg)
	wall := time.Since(start)
	if err != nil {
		// Contained group failures still produce a report; anything else
		// (config rejection) is fatal.
		if res == nil {
			log.Fatal(err)
		}
		log.Printf("swarm: %d group(s) failed: %v", len(res.FailedGroups), err)
	}

	// BENCH_swarm.json under the unified schema (DESIGN.md §8.6).
	reg := metrics.NewRegistry("swarm")
	reg.SetConfig("clients", *clients)
	reg.SetConfig("groups", *groups)
	if *workers > 0 {
		reg.SetConfig("workers", *workers)
	} else {
		reg.SetConfig("workers", runtime.GOMAXPROCS(0))
	}
	reg.SetConfig("seed", *seed)
	reg.SetConfig("protocol", *protocol)
	reg.SetConfig("backend", *backend)
	if *backend == "netem" {
		reg.SetConfig("cc", *ccName)
	}
	reg.SetConfig("capacity_mbps", *capacity)
	if *tracesPath != "" {
		reg.SetConfig("traces", *tracesPath)
	}
	reg.SetConfig("chunks", *chunks)
	res.EmitMetrics(reg, wall.Seconds())
	if serveMode != nil {
		reg.SetConfig("serve_deadline_us", float64(*deadline)/float64(time.Microsecond))
		serveMode.EmitMetrics(reg)
	}

	speedup := res.VirtualSeconds / wall.Seconds()
	eventsPerSec := float64(res.Events) / wall.Seconds()
	fmt.Printf("swarm:    %d clients / %d groups completed in %.2fs wall (%.0fs virtual, %.0fx real time)\n",
		res.CompletedClients, *groups-len(res.FailedGroups), wall.Seconds(), res.VirtualSeconds, speedup)
	fmt.Printf("events:   %d (%.0f events/s)\n", res.Events, eventsPerSec)
	fmt.Printf("qoe:      per-client mean %.3f p50 %.3f p95 %.3f\n",
		res.QoEPerClient.Mean, res.QoEPerClient.P50, res.QoEPerClient.P95)
	fmt.Printf("rebuffer: per-client mean %.2fs p95 %.2fs\n",
		res.RebufferPerClient.Mean, res.RebufferPerClient.P95)
	fmt.Printf("fairness: Jain %.4f (per-group p50 %.4f)\n", res.Jain, res.GroupJain.P50)
	if serveMode != nil {
		p := serveMode.Proto()
		fmt.Printf("serving:  %d decisions, %d fallbacks (%.4f rate), %d shed by engine\n",
			p.Decisions(), p.Fallbacks(), p.FallbackRate(), p.Engine().Shed())
	}

	if *jsonOut != "" {
		if err := reg.WriteJSON(*jsonOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report:   %s\n", *jsonOut)
	}
}
