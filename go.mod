module advnet

go 1.22
